//! Micro-bench: the batched multi-source SPT kernel against the scalar
//! per-source loop — same topologies, same source lists, so bench-gate
//! can assert the decrease-key kernel's speedup directly
//! (`spt_batch/powerlaw_5000/batched` vs `spt_batch/powerlaw_5000/scalar`).
//!
//! Each row provisions the same 32-source batch: `scalar` loops
//! [`CsrGraph::full_tree`] with a reused [`DijkstraScratch`] (the exact
//! shape the provisioning sweep had before the batch kernel), `batched`
//! runs [`CsrGraph::full_tree_batch`] with a reused [`SptBatchScratch`].
//! Trees are bit-identical either way (asserted once per family before
//! timing); only the heap discipline and memory layout differ.

use rbpc_bench::{criterion_group, criterion_main, Criterion};
use rbpc_graph::{CostModel, CsrGraph, DijkstraScratch, Metric, NodeId, SptBatchScratch};
use rbpc_topo::{gnm_connected, internet_like_scaled};
use std::hint::black_box;

/// Sources per batch: one default shard of the sharded store.
const BATCH: usize = 32;

fn bench_spt_batch(c: &mut Criterion) {
    let isp = rbpc_bench::isp_graph();
    let power = internet_like_scaled(5_000, rbpc_bench::SEED);
    let random = gnm_connected(1_000, 3_000, 20, rbpc_bench::SEED);
    let model = CostModel::new(Metric::Weighted, rbpc_bench::SEED);

    let mut g = c.benchmark_group("spt_batch");
    // The gate's speedup rules divide this group's min_ns row pairs; min
    // over a larger sample count filters one-sided scheduler noise, so
    // the ratio converges to the true kernel speedup.
    g.sample_size(40);
    for (name, graph) in [
        ("isp_200", &isp),
        ("powerlaw_5000", &power),
        ("gnm_1000", &random),
    ] {
        let csr = CsrGraph::new(graph, &model);
        let n = csr.node_count();
        let sources: Vec<NodeId> = (0..BATCH).map(|i| NodeId::new(i * n / BATCH)).collect();

        // The two paths must agree exactly before we time them.
        let mut scalar = DijkstraScratch::new(n);
        let mut batch = SptBatchScratch::new(n);
        let want: Vec<_> = sources
            .iter()
            .map(|&s| csr.full_tree(s, &mut scalar))
            .collect();
        assert_eq!(csr.full_tree_batch(&sources, None, &mut batch), want);

        g.bench_function(format!("{name}/scalar"), |b| {
            b.iter(|| {
                for &s in &sources {
                    black_box(black_box(&csr).full_tree(s, &mut scalar));
                }
            })
        });
        g.bench_function(format!("{name}/batched"), |b| {
            b.iter(|| black_box(&csr).full_tree_batch(black_box(&sources), None, &mut batch))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_spt_batch);
criterion_main!(benches);
