//! Bench: regenerate Table 3 (bypass hop-count distribution per topology).

use rbpc_bench::{criterion_group, criterion_main, Criterion};
use rbpc_eval::{standard_suite, table3, EvalScale};
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let suite = standard_suite(EvalScale::Quick, rbpc_bench::SEED);

    // Emit the artifact once, side by side as in the paper.
    let hists: Vec<_> = suite
        .iter()
        .map(|case| table3(&case.name, &case.graph, case.metric, rbpc_bench::SEED, 4))
        .collect();
    println!("\n{}", rbpc_eval::table3::render(&hists));

    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    for case in &suite {
        g.bench_function(format!("bypasses/{}", case.name.replace(", ", "_")), |b| {
            b.iter(|| {
                table3(
                    &case.name,
                    black_box(&case.graph),
                    case.metric,
                    rbpc_bench::SEED,
                    4,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
