//! Flight-recorder overhead bench: the same restore query with the
//! global black-box ring installed versus absent. The recorder is meant
//! to be *always on* in production runs, so its per-restore cost — one
//! Acquire load when idle, plus one slot-mutex write when recording —
//! must stay in the noise. `scripts/bench_gate.sh` enforces that
//! recorder-on stays within ~5% of recorder-off.

use rbpc_bench::{criterion_group, criterion_main, Criterion};
use rbpc_core::{BasePathOracle, Restorer};
use rbpc_graph::FailureSet;
use rbpc_obs::{set_flight_recorder, FlightRecorder};
use std::hint::black_box;
use std::sync::Arc;

fn bench_flight_recorder(c: &mut Criterion) {
    let oracle = rbpc_bench::isp_oracle();
    let graph = oracle.graph().clone();
    let restorer = Restorer::new(&oracle);

    // A representative long LSP and a mid-path failure (same scenario as
    // the decompose bench's full_restore_pipeline).
    let pairs = rbpc_bench::pairs(&graph, 200);
    let (s, t, base) = pairs
        .iter()
        .filter_map(|&(s, t)| oracle.base_path(s, t).map(|p| (s, t, p)))
        .max_by_key(|(_, _, p)| p.hop_count())
        .expect("pairs exist");
    let failures = FailureSet::of_edge(base.edges()[base.hop_count() / 2]);

    let mut g = c.benchmark_group("flight_recorder");
    // The two arms differ by a few percent at ~6µs/iter, which is inside
    // single-run jitter at the default 20 samples; a wider sample window
    // tightens the min estimate the gate's ratio rule compares.
    g.sample_size(60);
    let previous = set_flight_recorder(None);
    g.bench_function("isp_200/restore_off", |b| {
        b.iter(|| restorer.restore(s, t, black_box(&failures)).unwrap())
    });
    let ring = Arc::new(FlightRecorder::new(4096));
    set_flight_recorder(Some(Arc::clone(&ring)));
    g.bench_function("isp_200/restore_on", |b| {
        b.iter(|| restorer.restore(s, t, black_box(&failures)).unwrap())
    });
    set_flight_recorder(previous);
    g.finish();

    // Sanity print: the "on" leg really recorded (0 under
    // --no-default-features, where the hot-path hook compiles out).
    println!(
        "\nflight_recorder: {} records captured in the on leg",
        ring.recorded()
    );
}

criterion_group!(benches, bench_flight_recorder);
criterion_main!(benches);
