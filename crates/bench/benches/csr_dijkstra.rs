//! Micro-bench: the CSR graph core against the `Vec<Vec>` adjacency
//! substrate measured in `dijkstra.rs` — same topologies, same rows, so
//! bench-gate can assert the flat layout's speedup directly
//! (`csr_dijkstra/powerlaw_5000/full_tree` vs
//! `dijkstra/powerlaw_5000/full_tree`).

use rbpc_bench::{criterion_group, criterion_main, Criterion};
use rbpc_graph::{CostModel, CsrGraph, DijkstraScratch, FailureMask, Metric, NodeId};
use rbpc_topo::{gnm_connected, internet_like_scaled};
use std::hint::black_box;

fn bench_csr_dijkstra(c: &mut Criterion) {
    let isp = rbpc_bench::isp_graph();
    let power = internet_like_scaled(5_000, rbpc_bench::SEED);
    let random = gnm_connected(1_000, 3_000, 20, rbpc_bench::SEED);
    let model = CostModel::new(Metric::Weighted, rbpc_bench::SEED);

    let mut g = c.benchmark_group("csr_dijkstra");
    for (name, graph) in [
        ("isp_200", &isp),
        ("powerlaw_5000", &power),
        ("gnm_1000", &random),
    ] {
        let csr = CsrGraph::new(graph, &model);
        let mut scratch = DijkstraScratch::new(csr.node_count());
        let t = NodeId::new(graph.node_count() - 1);
        g.bench_function(format!("{name}/full_tree"), |b| {
            b.iter(|| black_box(&csr).full_tree(NodeId::new(0), &mut scratch))
        });
        g.bench_function(format!("{name}/point_to_point"), |b| {
            b.iter(|| black_box(&csr).point_to_point(NodeId::new(0), t, None, &mut scratch))
        });
        let mut mask = FailureMask::new(csr.node_count(), csr.edge_count());
        mask.fail_edge(rbpc_graph::EdgeId::new(0));
        g.bench_function(format!("{name}/point_to_point_masked"), |b| {
            b.iter(|| black_box(&csr).point_to_point(NodeId::new(0), t, Some(&mask), &mut scratch))
        });
        g.bench_function(format!("{name}/build"), |b| {
            b.iter(|| CsrGraph::new(black_box(graph), &model))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_csr_dijkstra);
criterion_main!(benches);
