//! The perf-regression gate: compares a fresh `BENCH_rbpc.json` against a
//! committed baseline and fails when any benchmark's median slowed down by
//! more than the configured tolerance.
//!
//! Both files are JSONL — one object per benchmark as written by the
//! harness's `--json` mode ([`crate::crit::finish_main`]). Only benchmarks
//! present in **both** files are compared; additions and removals are
//! reported but never fail the gate, so the baseline does not have to be
//! refreshed in the same commit that adds a bench target.

use rbpc_obs::json::{self, JsonValue};
use std::collections::BTreeMap;

/// One benchmark's summary as read back from a JSONL results file.
#[derive(Debug, Clone, PartialEq)]
pub struct GateEntry {
    /// `group/id` benchmark name.
    pub name: String,
    /// Median ns/iteration.
    pub median_ns: f64,
    /// 95th-percentile ns/iteration.
    pub p95_ns: f64,
    /// Fastest sample, ns/iteration. Scheduler noise only ever *adds*
    /// time, so the minimum is the most stable estimator of a
    /// benchmark's true cost — speedup rules compare minima for that
    /// reason. Falls back to the median when a results file predates
    /// the field.
    pub min_ns: f64,
}

/// A required speedup between two benchmarks of the *current* run: `fast`
/// must have a best (minimum) sample at least `min_ratio` times smaller
/// than `slow`'s.
///
/// This guards claims of the form "incremental repair beats a full rebuild
/// by ≥ 5×" — a property the plain regression check cannot express, since
/// both sides could slow down in lockstep and still pass. Minima rather
/// than medians: the ratio of two noisy medians on a shared runner swings
/// far more than the ratio of two minima, and a flaky gate is worse than
/// a slightly optimistic one.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupRule {
    /// Name of the benchmark expected to be faster.
    pub fast: String,
    /// Name of the benchmark it is measured against.
    pub slow: String,
    /// Minimum required `slow.min / fast.min`.
    pub min_ratio: f64,
}

impl SpeedupRule {
    /// Parses a `fast,slow,min_ratio` spec (comma-separated because
    /// benchmark names contain `/`).
    ///
    /// # Errors
    ///
    /// Returns a message when the spec does not have exactly three
    /// comma-separated fields or the ratio is not a positive number.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let parts: Vec<&str> = spec.split(',').collect();
        let [fast, slow, ratio] = parts.as_slice() else {
            return Err(format!(
                "speedup spec `{spec}` is not `fast,slow,min_ratio`"
            ));
        };
        let min_ratio: f64 = ratio
            .parse()
            .map_err(|e| format!("speedup spec `{spec}`: bad ratio: {e}"))?;
        if !(min_ratio > 0.0 && min_ratio.is_finite()) {
            return Err(format!("speedup spec `{spec}`: ratio must be positive"));
        }
        Ok(SpeedupRule {
            fast: fast.to_string(),
            slow: slow.to_string(),
            min_ratio,
        })
    }
}

/// The outcome of one [`SpeedupRule`] against the current results.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupCheck {
    /// The rule that was checked.
    pub rule: SpeedupRule,
    /// Achieved `slow.min / fast.min`, or `None` when either benchmark
    /// is absent from the current results (skipped, not failed, so
    /// partial bench runs don't flake the gate).
    pub ratio: Option<f64>,
}

impl SpeedupCheck {
    /// Whether this check passes (absent benchmarks pass vacuously).
    pub fn passed(&self) -> bool {
        self.ratio.is_none_or(|r| r >= self.rule.min_ratio)
    }
}

/// The comparison of one benchmark across baseline and current runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Benchmark name.
    pub name: String,
    /// Baseline median ns/iteration.
    pub baseline_ns: f64,
    /// Current median ns/iteration.
    pub current_ns: f64,
    /// `current / baseline` (1.0 = unchanged, 2.0 = twice as slow).
    pub ratio: f64,
    /// Whether the slowdown exceeds the tolerance.
    pub regressed: bool,
}

/// The gate's verdict over a full result-file pair.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Per-benchmark comparisons, in name order.
    pub compared: Vec<Comparison>,
    /// Benchmarks only in the baseline (deleted or not run).
    pub only_baseline: Vec<String>,
    /// Benchmarks only in the current results (new targets).
    pub only_current: Vec<String>,
    /// Speedup-rule outcomes over the current results.
    pub speedups: Vec<SpeedupCheck>,
    /// The relative slowdown allowed before a benchmark regresses.
    pub tolerance: f64,
}

impl GateReport {
    /// Whether the gate passes: no compared benchmark regressed and every
    /// speedup rule holds.
    pub fn passed(&self) -> bool {
        self.compared.iter().all(|c| !c.regressed) && self.speedups.iter().all(|s| s.passed())
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let width = self
            .compared
            .iter()
            .map(|c| c.name.len())
            .max()
            .unwrap_or(12)
            .max(12);
        let _ = writeln!(
            out,
            "{:<width$} {:>14} {:>14} {:>8}  verdict",
            "benchmark", "baseline", "current", "ratio"
        );
        for c in &self.compared {
            let verdict = if c.regressed { "REGRESSED" } else { "ok" };
            let _ = writeln!(
                out,
                "{:<width$} {:>12.1}ns {:>12.1}ns {:>7.2}x  {verdict}",
                c.name, c.baseline_ns, c.current_ns, c.ratio
            );
        }
        for name in &self.only_baseline {
            let _ = writeln!(out, "{name:<width$} (baseline only — not compared)");
        }
        for name in &self.only_current {
            let _ = writeln!(out, "{name:<width$} (new — not compared)");
        }
        for s in &self.speedups {
            match s.ratio {
                Some(r) => {
                    let verdict = if s.passed() { "ok" } else { "TOO SLOW" };
                    let _ = writeln!(
                        out,
                        "speedup {} vs {} (best samples): {:.2}x (need >= {:.2}x)  {verdict}",
                        s.rule.fast, s.rule.slow, r, s.rule.min_ratio
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "speedup {} vs {}: benchmark missing — skipped",
                        s.rule.fast, s.rule.slow
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "tolerance: median may grow up to {:.0}% before failing",
            self.tolerance * 100.0
        );
        out
    }
}

/// Parses a JSONL results file (as written by the bench harness's `--json`
/// mode) into gate entries. Blank lines are skipped; later lines win when a
/// benchmark name repeats.
///
/// # Errors
///
/// Returns a message naming the first malformed line (bad JSON, or missing
/// `bench` / `median_ns` / `p95_ns` fields).
pub fn parse_results(jsonl: &str) -> Result<Vec<GateEntry>, String> {
    let mut by_name: BTreeMap<String, GateEntry> = BTreeMap::new();
    for (i, line) in jsonl.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let field = |key: &str| -> Result<&JsonValue, String> {
            value
                .get(key)
                .ok_or_else(|| format!("line {}: missing `{key}`", i + 1))
        };
        let name = field("bench")?
            .as_str()
            .ok_or_else(|| format!("line {}: `bench` is not a string", i + 1))?
            .to_string();
        let num = |key: &str| -> Result<f64, String> {
            field(key)?
                .as_f64()
                .ok_or_else(|| format!("line {}: `{key}` is not a number", i + 1))
        };
        let median_ns = num("median_ns")?;
        let entry = GateEntry {
            median_ns,
            p95_ns: num("p95_ns")?,
            min_ns: num("min_ns").unwrap_or(median_ns),
            name: name.clone(),
        };
        by_name.insert(name, entry);
    }
    Ok(by_name.into_values().collect())
}

/// Compares current results against a baseline. A benchmark regresses when
/// its current median exceeds `baseline * (1 + tolerance)` — e.g.
/// `tolerance = 0.75` allows up to a 75% slowdown before failing, generous
/// enough to absorb shared-runner noise while catching real cliffs.
pub fn compare(baseline: &[GateEntry], current: &[GateEntry], tolerance: f64) -> GateReport {
    compare_with_speedups(baseline, current, tolerance, &[])
}

/// [`compare`], plus [`SpeedupRule`]s evaluated over the *current* results:
/// each rule requires `current[slow].min / current[fast].min >= min_ratio`
/// (minima, not medians — see [`SpeedupRule`]). A rule whose benchmarks
/// are absent from the current run is reported as skipped and passes
/// vacuously.
pub fn compare_with_speedups(
    baseline: &[GateEntry],
    current: &[GateEntry],
    tolerance: f64,
    rules: &[SpeedupRule],
) -> GateReport {
    let base: BTreeMap<&str, &GateEntry> = baseline.iter().map(|e| (e.name.as_str(), e)).collect();
    let cur: BTreeMap<&str, &GateEntry> = current.iter().map(|e| (e.name.as_str(), e)).collect();
    let mut compared = Vec::new();
    let mut only_baseline = Vec::new();
    let mut only_current = Vec::new();
    for (name, b) in &base {
        match cur.get(name) {
            Some(c) => {
                let ratio = if b.median_ns > 0.0 {
                    c.median_ns / b.median_ns
                } else {
                    1.0
                };
                compared.push(Comparison {
                    name: (*name).to_string(),
                    baseline_ns: b.median_ns,
                    current_ns: c.median_ns,
                    ratio,
                    regressed: ratio > 1.0 + tolerance,
                });
            }
            None => only_baseline.push((*name).to_string()),
        }
    }
    for name in cur.keys() {
        if !base.contains_key(name) {
            only_current.push((*name).to_string());
        }
    }
    let speedups = rules
        .iter()
        .map(|rule| {
            let ratio = match (cur.get(rule.fast.as_str()), cur.get(rule.slow.as_str())) {
                (Some(f), Some(s)) if f.min_ns > 0.0 => Some(s.min_ns / f.min_ns),
                _ => None,
            };
            SpeedupCheck {
                rule: rule.clone(),
                ratio,
            }
        })
        .collect();
    GateReport {
        compared,
        only_baseline,
        only_current,
        speedups,
        tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, median: f64) -> String {
        format!(
            "{{\"bench\":\"{name}\",\"median_ns\":{median},\"p95_ns\":{},\
             \"min_ns\":{},\"max_ns\":{},\"samples\":20,\"iters\":8}}",
            median * 1.2,
            median * 0.9,
            median * 1.5
        )
    }

    #[test]
    fn parse_roundtrip() {
        let text = format!("{}\n\n{}\n", entry("g/a", 100.0), entry("g/b", 250.5));
        let entries = parse_results(&text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "g/a");
        assert!((entries[1].median_ns - 250.5).abs() < 1e-9);
        assert!((entries[1].p95_ns - 300.6).abs() < 1e-9);
    }

    #[test]
    fn parse_falls_back_to_median_without_min() {
        let entries =
            parse_results("{\"bench\":\"g/a\",\"median_ns\":120.0,\"p95_ns\":150.0}\n").unwrap();
        assert!((entries[0].min_ns - 120.0).abs() < 1e-9);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_results("not json\n").is_err());
        assert!(parse_results("{\"median_ns\":1,\"p95_ns\":1}\n").is_err());
        assert!(parse_results("{\"bench\":\"x\",\"p95_ns\":1}\n").is_err());
    }

    #[test]
    fn unchanged_results_pass() {
        let base =
            parse_results(&format!("{}\n{}", entry("g/a", 100.0), entry("g/b", 50.0))).unwrap();
        let report = compare(&base, &base, 0.75);
        assert!(report.passed());
        assert_eq!(report.compared.len(), 2);
        assert!(report.only_baseline.is_empty() && report.only_current.is_empty());
    }

    #[test]
    fn synthetic_slowdown_fails() {
        let base = parse_results(&entry("g/a", 100.0)).unwrap();
        // 3x the baseline median: well past a 75% tolerance.
        let slow = parse_results(&entry("g/a", 300.0)).unwrap();
        let report = compare(&base, &slow, 0.75);
        assert!(!report.passed());
        assert!(report.compared[0].regressed);
        assert!((report.compared[0].ratio - 3.0).abs() < 1e-9);
        assert!(report.render().contains("REGRESSED"));
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let base = parse_results(&entry("g/a", 100.0)).unwrap();
        let slightly = parse_results(&entry("g/a", 160.0)).unwrap();
        assert!(compare(&base, &slightly, 0.75).passed());
        assert!(!compare(&base, &slightly, 0.5).passed());
    }

    #[test]
    fn speedup_rule_parses_and_rejects() {
        let rule = SpeedupRule::parse("g/fast,g/slow,5.0").unwrap();
        assert_eq!(rule.fast, "g/fast");
        assert_eq!(rule.slow, "g/slow");
        assert!((rule.min_ratio - 5.0).abs() < 1e-9);
        assert!(SpeedupRule::parse("g/fast,g/slow").is_err());
        assert!(SpeedupRule::parse("a,b,c,d").is_err());
        assert!(SpeedupRule::parse("a,b,nope").is_err());
        assert!(SpeedupRule::parse("a,b,-1").is_err());
        assert!(SpeedupRule::parse("a,b,0").is_err());
    }

    #[test]
    fn speedup_rule_gates_on_current_ratio() {
        let cur = parse_results(&format!(
            "{}\n{}",
            entry("g/fast", 10.0),
            entry("g/slow", 100.0)
        ))
        .unwrap();
        let ok = SpeedupRule::parse("g/fast,g/slow,5.0").unwrap();
        let report = compare_with_speedups(&cur, &cur, 0.75, &[ok]);
        assert!(report.passed());
        assert!((report.speedups[0].ratio.unwrap() - 10.0).abs() < 1e-9);
        assert!(report.render().contains("10.00x"));

        let too_strict = SpeedupRule::parse("g/fast,g/slow,20.0").unwrap();
        let report = compare_with_speedups(&cur, &cur, 0.75, &[too_strict]);
        assert!(!report.passed());
        assert!(report.render().contains("TOO SLOW"));
    }

    #[test]
    fn speedup_rule_skips_missing_benchmarks() {
        let cur = parse_results(&entry("g/fast", 10.0)).unwrap();
        let rule = SpeedupRule::parse("g/fast,g/slow,5.0").unwrap();
        let report = compare_with_speedups(&cur, &cur, 0.75, &[rule]);
        assert!(report.passed());
        assert!(report.speedups[0].ratio.is_none());
        assert!(report.render().contains("skipped"));
    }

    #[test]
    fn disjoint_names_never_fail() {
        let base = parse_results(&entry("g/old", 100.0)).unwrap();
        let cur = parse_results(&entry("g/new", 9e9)).unwrap();
        let report = compare(&base, &cur, 0.75);
        assert!(report.passed());
        assert_eq!(report.only_baseline, vec!["g/old".to_string()]);
        assert_eq!(report.only_current, vec!["g/new".to_string()]);
    }
}
