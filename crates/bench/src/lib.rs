//! Shared fixtures for the RBPC benchmark suite.
//!
//! Each bench target regenerates one of the paper's artifacts (`table1`,
//! `table2`, `table3`, `figure10`) or measures a core mechanism
//! (`dijkstra`, `decompose`, `restoration_vs_reestablish`) using the
//! std-only Criterion-shaped harness in [`crit`]. Fixtures are built once
//! per target at quick scale so `cargo bench` completes in minutes; run
//! `rbpc-eval --scale paper` for the full-size numbers.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod crit;
pub mod gate;

pub use crit::{take_results, BatchSize, BenchResult, Bencher, BenchmarkGroup, Criterion};

use rbpc_core::DenseBasePaths;
use rbpc_graph::{CostModel, Graph, Metric, NodeId};
use rbpc_topo::{isp_topology, IspParams};

/// The standard seed used across all bench fixtures.
pub const SEED: u64 = 1;

/// The paper-scale synthetic ISP backbone (≈200 nodes).
pub fn isp_graph() -> Graph {
    isp_topology(IspParams::default(), SEED).graph
}

/// A dense oracle over the ISP with OSPF weights.
pub fn isp_oracle() -> DenseBasePaths {
    DenseBasePaths::build(isp_graph(), CostModel::new(Metric::Weighted, SEED))
}

/// Deterministic sampled pairs on a graph (delegates to the eval crate).
pub fn pairs(graph: &Graph, count: usize) -> Vec<(NodeId, NodeId)> {
    rbpc_eval::sample_pairs(graph, count, SEED)
}
