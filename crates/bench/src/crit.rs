//! A std-only micro-benchmark harness with a Criterion-shaped API.
//!
//! The real `criterion` crate is unavailable offline, so this module
//! implements the small subset the bench targets use — `Criterion`,
//! `benchmark_group`, `bench_function`, `sample_size`, `Bencher::iter`,
//! `Bencher::iter_batched`, and the `criterion_group!`/`criterion_main!`
//! macros — on top of `std::time::Instant`. Each benchmark is calibrated
//! to a minimum per-sample runtime, then timed over `sample_size` samples;
//! the median, minimum, and maximum ns/iteration are printed.
//!
//! This is a measurement tool, not a statistics suite: no outlier
//! rejection, no regression analysis. For publishable numbers, vendor
//! criterion and swap the import back.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Minimum measured duration per sample after calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

/// One measured benchmark: summary statistics over the timed samples, in
/// nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// `group/id` — the stable name the perf gate keys on.
    pub name: String,
    /// Median ns/iteration over the samples.
    pub median_ns: f64,
    /// 95th-percentile ns/iteration (nearest rank).
    pub p95_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample after calibration.
    pub iters: u64,
}

impl BenchResult {
    /// Renders the result as one JSON object (a `BENCH_rbpc.json` line).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"bench\":\"{}\",\"median_ns\":{:.1},\"p95_ns\":{:.1},\
             \"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{},\"iters\":{}}}",
            self.name,
            self.median_ns,
            self.p95_ns,
            self.min_ns,
            self.max_ns,
            self.samples,
            self.iters
        )
    }
}

fn results() -> &'static Mutex<Vec<BenchResult>> {
    static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());
    &RESULTS
}

/// Drains every result recorded by [`BenchmarkGroup::bench_function`] since
/// the process started (or the previous drain).
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut results().lock().expect("bench results poisoned"))
}

/// Writes collected results to the `--json FILE` named in `args`, if any —
/// called by the `criterion_main!`-generated `main` after all groups ran.
///
/// The file is opened in append mode so several bench binaries (cargo runs
/// one per `[[bench]]` target) can accumulate into a single JSONL file;
/// delete it before the run for a fresh snapshot. Unrelated flags that
/// cargo's bench runner passes (e.g. `--bench`) are ignored.
pub fn finish_main() {
    let mut args = std::env::args().skip(1);
    let mut json_path = None;
    while let Some(a) = args.next() {
        if a == "--json" {
            json_path = args.next();
        }
    }
    let collected = take_results();
    let Some(path) = json_path else { return };
    let mut body = String::new();
    for r in &collected {
        body.push_str(&r.to_json_line());
        body.push('\n');
    }
    use std::io::Write as _;
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(body.as_bytes()));
    match written {
        Ok(()) => eprintln!("# appended {} result(s) to {path}", collected.len()),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`]; accepted for API
/// compatibility (this harness always runs one setup per routine call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Routine input is small; criterion would batch many per allocation.
    SmallInput,
    /// Routine input is large; criterion would batch few per allocation.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Top-level benchmark driver (shim for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// A named group of benchmarks sharing a sample count.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: calibrates an iteration count, takes
    /// `sample_size` timed samples, and prints median/min/max ns per
    /// iteration.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Calibrate: double the iteration count until one sample is slow
        // enough to time reliably.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 30 {
                break;
            }
            // Jump straight to the projected count once we have signal.
            iters = if b.elapsed.is_zero() {
                iters * 2
            } else {
                let scale = TARGET_SAMPLE.as_secs_f64() / b.elapsed.as_secs_f64();
                ((iters as f64 * scale).ceil() as u64).clamp(iters + 1, iters * 100)
            };
        }

        let mut per_iter: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let p95 = per_iter[((per_iter.len() - 1) as f64 * 0.95).round() as usize];
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        println!(
            "{}/{:<40} {:>14} ns/iter (p95 {}, min {}, max {}, {} samples x {} iters)",
            self.name,
            id,
            fmt_ns(median),
            fmt_ns(p95),
            fmt_ns(min),
            fmt_ns(max),
            self.sample_size,
            iters
        );
        results()
            .lock()
            .expect("bench results poisoned")
            .push(BenchResult {
                name: format!("{}/{id}", self.name),
                median_ns: median,
                p95_ns: p95,
                min_ns: min,
                max_ns: max,
                samples: self.sample_size,
                iters,
            });
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}")
    }
}

/// Timing context handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Declares a benchmark group function (shim for
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main` (shim for
/// `criterion::criterion_main!`). After all groups run, results are
/// appended to the `--json FILE` argument if one was passed (see
/// [`crate::crit::finish_main`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::crit::finish_main();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_test");
        g.sample_size(2);
        let mut ran = 0u64;
        g.bench_function("spin", |b| b.iter(|| std::hint::black_box(3u64 * 7)));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || 21u64,
                |x| {
                    ran += 1;
                    x * 2
                },
                BatchSize::LargeInput,
            )
        });
        assert!(ran > 0);
        let recorded = take_results();
        assert!(recorded.iter().any(|r| r.name == "shim_test/spin"));
        assert!(recorded.iter().any(|r| r.name == "shim_test/batched"));
        for r in &recorded {
            assert!(r.median_ns > 0.0);
            assert!(r.p95_ns >= r.median_ns - 1e-9);
            assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
            assert_eq!(r.samples, 2);
        }
    }

    #[test]
    fn json_line_is_wellformed() {
        let r = BenchResult {
            name: "g/b".to_string(),
            median_ns: 1234.5,
            p95_ns: 2000.0,
            min_ns: 1000.0,
            max_ns: 2100.25,
            samples: 20,
            iters: 64,
        };
        let line = r.to_json_line();
        assert!(line.starts_with("{\"bench\":\"g/b\""));
        assert!(line.contains("\"median_ns\":1234.5"));
        assert!(line.contains("\"p95_ns\":2000.0"));
        assert!(line.contains("\"iters\":64"));
    }
}
