//! `bench-gate` — fail the build when benchmarks regress.
//!
//! ```text
//! bench-gate --baseline bench/baseline.json --current BENCH_rbpc.json
//!            [--tolerance 0.75] [--speedup FAST,SLOW,RATIO]...
//! ```
//!
//! Both files are JSONL as written by the bench harness's `--json` mode.
//! Exits 0 when every benchmark present in both files has a current median
//! within `baseline * (1 + tolerance)` and every `--speedup` rule holds on
//! the current results, 1 when any regressed or a speedup fell short, 2 on
//! usage or I/O errors. See `scripts/bench_gate.sh` for the end-to-end
//! pipeline.

use rbpc_bench::gate::{compare_with_speedups, parse_results, SpeedupRule};
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: bench-gate --baseline FILE --current FILE [--tolerance X]\n\
     \x20                [--speedup FAST,SLOW,RATIO]...\n\
     \x20 --baseline FILE   committed JSONL baseline (bench/baseline.json)\n\
     \x20 --current FILE    fresh JSONL results (BENCH_rbpc.json)\n\
     \x20 --tolerance X     allowed relative median growth (default 0.75)\n\
     \x20 --speedup SPEC    require current[SLOW].min / current[FAST].min\n\
     \x20                   >= RATIO (best samples — robust to runner\n\
     \x20                   noise); comma-separated since bench names\n\
     \x20                   contain `/`. Repeatable. Skipped (with a note)\n\
     \x20                   when either benchmark is absent from --current."
}

struct Opts {
    baseline: String,
    current: String,
    tolerance: f64,
    speedups: Vec<SpeedupRule>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut baseline = None;
    let mut current = None;
    let mut tolerance = 0.75f64;
    let mut speedups = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--baseline" => baseline = Some(value()?),
            "--current" => current = Some(value()?),
            "--tolerance" => {
                tolerance = value()?
                    .parse()
                    .map_err(|e| format!("bad tolerance: {e}"))?;
                if !(tolerance >= 0.0 && tolerance.is_finite()) {
                    return Err("tolerance must be a finite non-negative number".to_string());
                }
            }
            "--speedup" => speedups.push(SpeedupRule::parse(&value()?)?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Opts {
        baseline: baseline.ok_or("missing --baseline")?,
        current: current.ok_or("missing --current")?,
        tolerance,
        speedups,
    })
}

fn load(path: &str) -> Result<Vec<rbpc_bench::gate::GateEntry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let entries = parse_results(&text).map_err(|e| format!("{path}: {e}"))?;
    if entries.is_empty() {
        return Err(format!("{path}: no benchmark results"));
    }
    Ok(entries)
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    let (baseline, current) = match (load(&opts.baseline), load(&opts.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return ExitCode::from(2);
        }
    };
    let report = compare_with_speedups(&baseline, &current, opts.tolerance, &opts.speedups);
    print!("{}", report.render());
    if report.compared.is_empty() {
        eprintln!("error: no benchmark names in common between baseline and current");
        return ExitCode::from(2);
    }
    if report.passed() {
        println!(
            "bench gate: PASS ({} compared, {} speedup rules)",
            report.compared.len(),
            report.speedups.len()
        );
        ExitCode::SUCCESS
    } else {
        let regressed = report.compared.iter().filter(|c| c.regressed).count();
        let slow = report.speedups.iter().filter(|s| !s.passed()).count();
        println!("bench gate: FAIL ({regressed} regressed, {slow} speedup rules unmet)");
        ExitCode::FAILURE
    }
}
