//! Counting distinct shortest paths (the paper's *redundancy* statistic).
//!
//! Table 2 of the RBPC paper reports, per topology, the maximum number of
//! distinct shortest paths between any two routers — an indication of how
//! much extra state storing *all* shortest paths would require. We count
//! shortest paths under the **original** metric (no perturbation): parallel
//! edges of equal weight contribute distinct paths, exactly as distinct
//! LSPs would.

use crate::{CostModel, Metric, NodeId, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// For each node `v`, the number of distinct shortest `source → v` paths
/// under the original metric, saturating at `u64::MAX`.
///
/// Unreachable nodes (and all nodes, when the source is failed) count 0;
/// the source itself counts 1 (the trivial path).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn count_shortest_paths<T: Topology>(topo: &T, metric: Metric, source: NodeId) -> Vec<u64> {
    let graph = topo.graph();
    let n = graph.node_count();
    assert!(source.index() < n, "source {source} out of range");
    let mut counts = vec![0u64; n];
    if !topo.node_alive(source) {
        return counts;
    }
    // Plain Dijkstra on base weights; on settling u, propagate counts along
    // all tight edges. With non-negative weights every tight predecessor of
    // v settles before v, so counts are final when v settles.
    let mut dist = vec![u64::MAX; n];
    let mut settled = vec![false; n];
    let mut heap: BinaryHeap<(Reverse<u64>, u32)> = BinaryHeap::new();
    let model = CostModel::new(metric, 0); // base weights only; seed unused
    dist[source.index()] = 0;
    counts[source.index()] = 1;
    heap.push((Reverse(0), source.index() as u32));

    while let Some((Reverse(d), ui)) = heap.pop() {
        let u = NodeId::new(ui as usize);
        if settled[ui as usize] || d > dist[ui as usize] {
            continue;
        }
        settled[ui as usize] = true;
        for h in topo.live_neighbors(u) {
            let w = model.base_weight(graph, h.edge);
            let vi = h.to.index();
            let nd = d.saturating_add(w);
            if nd < dist[vi] {
                dist[vi] = nd;
                counts[vi] = counts[ui as usize];
                heap.push((Reverse(nd), vi as u32));
            } else if nd == dist[vi] && !settled[vi] {
                counts[vi] = counts[vi].saturating_add(counts[ui as usize]);
            }
        }
    }
    counts
}

/// The maximum, over the given source nodes, of the number of distinct
/// shortest paths from that source to any other node.
///
/// Passing all nodes gives the paper's "max number of distinct shortest
/// paths between any two routers"; passing a sample approximates it the way
/// the paper's sampled experiments do.
pub fn max_shortest_path_multiplicity<T: Topology>(
    topo: &T,
    metric: Metric,
    sources: impl IntoIterator<Item = NodeId>,
) -> u64 {
    let mut best = 0;
    for s in sources {
        let counts = count_shortest_paths(topo, metric, s);
        for (i, &c) in counts.iter().enumerate() {
            if i != s.index() {
                best = best.max(c);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FailureSet, Graph};

    #[test]
    fn single_path_counts_one() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        let c = count_shortest_paths(&g, Metric::Weighted, 0.into());
        assert_eq!(c, vec![1, 1, 1]);
    }

    #[test]
    fn square_has_two_paths_across() {
        let mut g = Graph::new(4);
        for (a, b) in [(0, 1), (1, 2), (3, 2), (0, 3)] {
            g.add_edge(a, b, 1).unwrap();
        }
        let c = count_shortest_paths(&g, Metric::Weighted, 0.into());
        assert_eq!(c[2], 2);
        assert_eq!(c[1], 1);
        assert_eq!(c[3], 1);
    }

    #[test]
    fn parallel_edges_count_separately() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 5).unwrap();
        g.add_edge(0, 1, 5).unwrap();
        g.add_edge(0, 1, 7).unwrap(); // longer, doesn't count
        let c = count_shortest_paths(&g, Metric::Weighted, 0.into());
        assert_eq!(c[1], 2);
    }

    #[test]
    fn weighted_vs_unweighted_counts_differ() {
        // 0-1-2 with weights 1,1 and a direct 0-2 of weight 2:
        // weighted: two shortest paths (cost 2); unweighted: one (1 hop).
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        g.add_edge(0, 2, 2).unwrap();
        let cw = count_shortest_paths(&g, Metric::Weighted, 0.into());
        let cu = count_shortest_paths(&g, Metric::Unweighted, 0.into());
        assert_eq!(cw[2], 2);
        assert_eq!(cu[2], 1);
    }

    #[test]
    fn grid_counts_binomials() {
        // 3x3 grid: #shortest paths corner-to-corner = C(4,2) = 6.
        let mut g = Graph::new(9);
        for r in 0..3 {
            for c in 0..3 {
                let i = r * 3 + c;
                if c + 1 < 3 {
                    g.add_edge(i, i + 1, 1).unwrap();
                }
                if r + 1 < 3 {
                    g.add_edge(i, i + 3, 1).unwrap();
                }
            }
        }
        let c = count_shortest_paths(&g, Metric::Unweighted, 0.into());
        assert_eq!(c[8], 6);
        assert_eq!(c[4], 2);
    }

    #[test]
    fn unreachable_and_failed() {
        let mut g = Graph::new(3);
        let e = g.add_edge(0, 1, 1).unwrap();
        let c = count_shortest_paths(&g, Metric::Weighted, 0.into());
        assert_eq!(c[2], 0);
        let f = FailureSet::of_edge(e);
        let c2 = count_shortest_paths(&f.view(&g), Metric::Weighted, 0.into());
        assert_eq!(c2, vec![1, 0, 0]);
        let fnode = FailureSet::of_nodes([0usize]);
        let c3 = count_shortest_paths(&fnode.view(&g), Metric::Weighted, 0.into());
        assert_eq!(c3, vec![0, 0, 0]);
    }

    #[test]
    fn multiplicity_over_sources() {
        let mut g = Graph::new(4);
        for (a, b) in [(0, 1), (1, 2), (3, 2), (0, 3)] {
            g.add_edge(a, b, 1).unwrap();
        }
        let m = max_shortest_path_multiplicity(&g, Metric::Weighted, g.nodes());
        assert_eq!(m, 2);
        let m_single = max_shortest_path_multiplicity(&g, Metric::Weighted, [NodeId::new(1)]);
        assert_eq!(m_single, 2); // 1 -> 3 has two 2-hop routes
    }
}
