//! Bridges and articulation points — the elements RBPC cannot protect.
//!
//! A bridge's failure disconnects its endpoints, and an articulation
//! point's failure disconnects some pair: no restoration scheme can help
//! there. Network planners run this analysis before provisioning; the
//! evaluation uses it to separate "unrestorable by topology" from
//! "unrestored by the scheme".
//!
//! Iterative Tarjan lowpoint computation (no recursion — the Internet
//! topology is 40 377 nodes deep in the worst case). Parallel edges are
//! handled correctly: only the specific tree edge is skipped on the way
//! back up, so a doubled link is never a bridge.

use crate::{EdgeId, NodeId, Topology};

/// The cut elements of a topology.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CutElements {
    /// Edges whose removal disconnects their endpoints, in discovery order.
    pub bridges: Vec<EdgeId>,
    /// Nodes whose removal disconnects their component, sorted by id.
    pub articulation_points: Vec<NodeId>,
}

impl CutElements {
    /// Whether the live part of the topology has no cut elements (is
    /// 2-edge-connected and 2-vertex-connected per component).
    pub fn is_biconnected(&self) -> bool {
        self.bridges.is_empty() && self.articulation_points.is_empty()
    }
}

/// Computes all bridges and articulation points of the live part of
/// `topo`.
pub fn cut_elements<T: Topology>(topo: &T) -> CutElements {
    let n = topo.graph().node_count();
    let mut disc = vec![0u32; n]; // 0 = unvisited; otherwise discovery time + 1
    let mut low = vec![0u32; n];
    let mut is_ap = vec![false; n];
    let mut bridges = Vec::new();
    let mut time = 0u32;

    // Iterative DFS frame: (node, parent edge, neighbor iterator state).
    struct Frame {
        node: NodeId,
        parent_edge: Option<EdgeId>,
        next_neighbor: usize,
        children: u32,
    }

    for root in 0..n {
        let root = NodeId::new(root);
        if disc[root.index()] != 0 || !topo.node_alive(root) {
            continue;
        }
        time += 1;
        disc[root.index()] = time;
        low[root.index()] = time;
        let mut stack = vec![Frame {
            node: root,
            parent_edge: None,
            next_neighbor: 0,
            children: 0,
        }];
        while let Some(frame) = stack.last_mut() {
            let u = frame.node;
            // Find the next live neighbor to process.
            let neighbor = topo.live_neighbors(u).nth(frame.next_neighbor);
            frame.next_neighbor += 1;
            match neighbor {
                Some(h) => {
                    if Some(h.edge) == frame.parent_edge {
                        continue;
                    }
                    if disc[h.to.index()] != 0 {
                        // Back edge.
                        low[u.index()] = low[u.index()].min(disc[h.to.index()]);
                        continue;
                    }
                    time += 1;
                    disc[h.to.index()] = time;
                    low[h.to.index()] = time;
                    frame.children += 1;
                    stack.push(Frame {
                        node: h.to,
                        parent_edge: Some(h.edge),
                        next_neighbor: 0,
                        children: 0,
                    });
                }
                None => {
                    // Done with u: propagate lowpoint to the parent.
                    let finished = stack
                        .pop()
                        .expect("invariant: loop runs only while the stack is nonempty");
                    let u = finished.node;
                    if u == root {
                        if finished.children >= 2 {
                            is_ap[u.index()] = true;
                        }
                        continue;
                    }
                    let parent = stack.last().expect("invariant: non-root has a parent");
                    let p = parent.node;
                    low[p.index()] = low[p.index()].min(low[u.index()]);
                    if low[u.index()] > disc[p.index()] {
                        bridges.push(
                            finished
                                .parent_edge
                                .expect("invariant: non-root has a parent edge"),
                        );
                    }
                    if low[u.index()] >= disc[p.index()] && p != root {
                        is_ap[p.index()] = true;
                    }
                }
            }
        }
    }
    CutElements {
        bridges,
        articulation_points: (0..n).filter(|&i| is_ap[i]).map(NodeId::new).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{connected_components, FailureSet, Graph};

    fn barbell() -> Graph {
        // Two triangles joined by a bridge 2-3.
        let mut g = Graph::new(6);
        for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_edge(a, b, 1).unwrap();
        }
        g.add_edge(2, 3, 1).unwrap();
        g
    }

    #[test]
    fn barbell_has_one_bridge_two_aps() {
        let g = barbell();
        let cuts = cut_elements(&g);
        assert_eq!(cuts.bridges, vec![g.find_edge(2.into(), 3.into()).unwrap()]);
        assert_eq!(
            cuts.articulation_points,
            vec![NodeId::new(2), NodeId::new(3)]
        );
        assert!(!cuts.is_biconnected());
    }

    #[test]
    fn cycle_is_biconnected() {
        let mut g = Graph::new(5);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5, 1).unwrap();
        }
        assert!(cut_elements(&g).is_biconnected());
    }

    #[test]
    fn path_is_all_bridges() {
        let mut g = Graph::new(4);
        for i in 0..3 {
            g.add_edge(i, i + 1, 1).unwrap();
        }
        let cuts = cut_elements(&g);
        assert_eq!(cuts.bridges.len(), 3);
        assert_eq!(
            cuts.articulation_points,
            vec![NodeId::new(1), NodeId::new(2)]
        );
    }

    #[test]
    fn parallel_edges_are_not_bridges() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(0, 1, 1).unwrap(); // doubled: not a bridge
        g.add_edge(1, 2, 1).unwrap(); // single: bridge
        let cuts = cut_elements(&g);
        assert_eq!(cuts.bridges, vec![EdgeId::new(2)]);
        assert_eq!(cuts.articulation_points, vec![NodeId::new(1)]);
    }

    #[test]
    fn respects_failure_views() {
        let g = barbell();
        // Failing a triangle edge turns the two remaining sides into
        // bridges.
        let e01 = g.find_edge(0.into(), 1.into()).unwrap();
        let f = FailureSet::of_edge(e01);
        let cuts = cut_elements(&f.view(&g));
        assert_eq!(cuts.bridges.len(), 3); // 1-2, 2-0, and 2-3
    }

    #[test]
    fn brute_force_agreement_on_random_graphs() {
        use crate::splitmix64;
        for seed in 0..8u64 {
            let mut g = Graph::new(10);
            let mut x = seed + 1;
            for a in 0..10usize {
                for b in a + 1..10 {
                    x = splitmix64(x);
                    if x % 4 == 0 {
                        g.add_edge(a, b, 1).unwrap();
                    }
                }
            }
            let cuts = cut_elements(&g);
            let base_components = connected_components(&g).count;
            // Brute force bridges.
            for e in g.edge_ids() {
                let f = FailureSet::of_edge(e);
                let after = connected_components(&f.view(&g)).count;
                assert_eq!(
                    after > base_components,
                    cuts.bridges.contains(&e),
                    "seed {seed} edge {e}"
                );
            }
            // Brute force articulation points: removing the node must
            // split its remaining component (ignoring the node itself).
            for v in g.nodes() {
                if g.degree(v) == 0 {
                    continue;
                }
                let f = FailureSet::of_nodes([v.index()]);
                let after = connected_components(&f.view(&g)).count;
                // Removing v also removes it from the count (singleton
                // components of dead nodes are not counted).
                let expect_split = after > base_components;
                assert_eq!(
                    expect_split,
                    cuts.articulation_points.contains(&v),
                    "seed {seed} node {v}"
                );
            }
        }
    }

    #[test]
    fn empty_and_isolated() {
        let g = Graph::new(0);
        assert!(cut_elements(&g).is_biconnected());
        let mut g2 = Graph::new(3);
        g2.add_edge(0, 1, 1).unwrap();
        let cuts = cut_elements(&g2);
        assert_eq!(cuts.bridges.len(), 1);
        assert!(cuts.articulation_points.is_empty());
    }
}
