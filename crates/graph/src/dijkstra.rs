//! Dijkstra's algorithm over a [`Topology`], using perturbed `u128` costs
//! for unique tie-breaking (see [`CostModel`]).

use crate::{
    CostModel, EdgeId, FailureSet, Graph, NodeId, Path, PathCost, ShortestPathTree, Topology,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes the shortest-path tree from `source` over `topo`.
///
/// Ties in the original metric are broken by the cost model's perturbation,
/// so the returned tree is canonical for a given `(metric, seed)` pair —
/// independently computed trees agree on every shared subpath, which is the
/// property the RBPC base-path set needs.
///
/// If `source` itself is failed in the view, every node (including the
/// source) is unreachable in the returned tree.
///
/// # Panics
///
/// Panics if `source` is out of range for the underlying graph.
pub fn shortest_path_tree<T: Topology>(
    topo: &T,
    model: &CostModel,
    source: NodeId,
) -> ShortestPathTree {
    let graph = topo.graph();
    assert!(
        source.index() < graph.node_count(),
        "source {source} out of range"
    );
    let n = graph.node_count();
    assert!(
        n <= CostModel::MAX_NODES,
        "graphs are limited to {} nodes (padding overflow)",
        CostModel::MAX_NODES
    );
    let mut tree = ShortestPathTree::unreachable(source, n);
    if !topo.node_alive(source) {
        return tree;
    }

    // dist/parent working arrays; tree is finalized on settle.
    let mut dist = vec![u128::MAX; n];
    let mut settled = vec![false; n];
    let mut base = vec![0u64; n];
    let mut hops = vec![0u32; n];
    let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];

    let mut heap: BinaryHeap<(Reverse<u128>, u32)> = BinaryHeap::new();
    dist[source.index()] = 0;
    heap.push((Reverse(0), source.index() as u32));

    while let Some((Reverse(d), ui)) = heap.pop() {
        let u = NodeId::new(ui as usize);
        if settled[ui as usize] || d > dist[ui as usize] {
            continue;
        }
        settled[ui as usize] = true;
        tree.settle(
            u,
            d,
            base[ui as usize],
            hops[ui as usize],
            parent[ui as usize],
        );

        for h in topo.live_neighbors(u) {
            let vi = h.to.index();
            if settled[vi] {
                continue;
            }
            let nd = d + model.perturbed_weight(graph, h.edge);
            if nd < dist[vi] {
                dist[vi] = nd;
                base[vi] = base[ui as usize] + model.base_weight(graph, h.edge);
                hops[vi] = hops[ui as usize] + 1;
                parent[vi] = Some((u, h.edge));
                heap.push((Reverse(nd), vi as u32));
            }
        }
    }
    tree
}

/// Computes the (unique, tie-broken) shortest path from `s` to `t` over
/// `topo`, with early termination once `t` is settled.
///
/// Returns `None` if `t` is unreachable from `s`.
///
/// # Panics
///
/// Panics if `s` or `t` is out of range.
pub fn shortest_path<T: Topology>(
    topo: &T,
    model: &CostModel,
    s: NodeId,
    t: NodeId,
) -> Option<Path> {
    let graph = topo.graph();
    assert!(s.index() < graph.node_count(), "source {s} out of range");
    assert!(t.index() < graph.node_count(), "target {t} out of range");
    if !topo.node_alive(s) || !topo.node_alive(t) {
        return None;
    }
    if s == t {
        return Some(Path::trivial(s));
    }
    let n = graph.node_count();
    let mut dist = vec![u128::MAX; n];
    let mut settled = vec![false; n];
    let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut heap: BinaryHeap<(Reverse<u128>, u32)> = BinaryHeap::new();
    dist[s.index()] = 0;
    heap.push((Reverse(0), s.index() as u32));

    while let Some((Reverse(d), ui)) = heap.pop() {
        let u = NodeId::new(ui as usize);
        if settled[ui as usize] || d > dist[ui as usize] {
            continue;
        }
        settled[ui as usize] = true;
        if u == t {
            // Reconstruct.
            let mut nodes = vec![t];
            let mut edges = Vec::new();
            let mut at = t;
            while let Some((pn, pe)) = parent[at.index()] {
                edges.push(pe);
                nodes.push(pn);
                at = pn;
            }
            nodes.reverse();
            edges.reverse();
            return Some(Path::from_parts_unchecked(nodes, edges));
        }
        for h in topo.live_neighbors(u) {
            let vi = h.to.index();
            if settled[vi] {
                continue;
            }
            let nd = d + model.perturbed_weight(graph, h.edge);
            if nd < dist[vi] {
                dist[vi] = nd;
                parent[vi] = Some((u, h.edge));
                heap.push((Reverse(nd), vi as u32));
            }
        }
    }
    None
}

/// The cost of the shortest path from `s` to `t` over `topo`, or `None` if
/// disconnected.
///
/// # Panics
///
/// Panics if `s` or `t` is out of range.
pub fn distance<T: Topology>(
    topo: &T,
    model: &CostModel,
    s: NodeId,
    t: NodeId,
) -> Option<PathCost> {
    shortest_path(topo, model, s, t).map(|p| p.cost(topo.graph(), model))
}

/// Convenience wrapper: shortest path in `graph` after applying `failures`.
///
/// Equivalent to `shortest_path(&failures.view(graph), model, s, t)`.
///
/// # Panics
///
/// Panics if `s` or `t` is out of range.
pub fn shortest_path_avoiding(
    graph: &Graph,
    model: &CostModel,
    s: NodeId,
    t: NodeId,
    failures: &FailureSet,
) -> Option<Path> {
    shortest_path(&failures.view(graph), model, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metric;

    fn model() -> CostModel {
        CostModel::new(Metric::Weighted, 17)
    }

    /// Classic 5-node weighted graph with a known shortest path structure.
    fn sample() -> Graph {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 10).unwrap();
        g.add_edge(0, 2, 3).unwrap();
        g.add_edge(2, 1, 4).unwrap();
        g.add_edge(1, 3, 2).unwrap();
        g.add_edge(2, 3, 8).unwrap();
        g.add_edge(3, 4, 7).unwrap();
        g.add_edge(2, 4, 20).unwrap();
        g
    }

    #[test]
    fn tree_matches_known_distances() {
        let g = sample();
        let t = shortest_path_tree(&g, &model(), 0.into());
        let want = [0u64, 7, 3, 9, 16];
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(t.base_dist(i.into()), Some(w), "node {i}");
        }
    }

    #[test]
    fn single_pair_agrees_with_tree() {
        let g = sample();
        let t = shortest_path_tree(&g, &model(), 0.into());
        for v in g.nodes() {
            let p = shortest_path(&g, &model(), 0.into(), v).unwrap();
            assert_eq!(p, t.path_to(v).unwrap(), "paths to {v} must be canonical");
        }
    }

    #[test]
    fn trivial_when_endpoints_equal() {
        let g = sample();
        let p = shortest_path(&g, &model(), 2.into(), 2.into()).unwrap();
        assert!(p.is_trivial());
        assert_eq!(distance(&g, &model(), 2.into(), 2.into()).unwrap().base, 0);
    }

    #[test]
    fn disconnected_returns_none() {
        let mut g = sample();
        let iso = g.add_node();
        assert_eq!(shortest_path(&g, &model(), 0.into(), iso), None);
        assert_eq!(distance(&g, &model(), 0.into(), iso), None);
    }

    #[test]
    fn respects_edge_failures() {
        let g = sample();
        // Fail 0-2; distance to 2 must go 0-1-2 = 14.
        let e = g.find_edge(0.into(), 2.into()).unwrap();
        let f = FailureSet::of_edge(e);
        let p = shortest_path_avoiding(&g, &model(), 0.into(), 2.into(), &f).unwrap();
        assert_eq!(p.cost(&g, &model()).base, 14);
        assert!(!p.contains_edge(e));
    }

    #[test]
    fn respects_node_failures() {
        let g = sample();
        // Fail node 2: 0->4 must go 0-1-3-4 = 19.
        let f = FailureSet::of_nodes([2usize]);
        let p = shortest_path_avoiding(&g, &model(), 0.into(), 4.into(), &f).unwrap();
        assert_eq!(p.cost(&g, &model()).base, 19);
        assert!(!p.contains_node(2.into()));
    }

    #[test]
    fn failed_source_or_target_unreachable() {
        let g = sample();
        let f = FailureSet::of_nodes([0usize]);
        let v = f.view(&g);
        assert_eq!(shortest_path(&v, &model(), 0.into(), 1.into()), None);
        assert_eq!(shortest_path(&v, &model(), 1.into(), 0.into()), None);
        let t = shortest_path_tree(&v, &model(), 0.into());
        assert!(!t.reachable(0.into()));
        assert!(!t.reachable(1.into()));
    }

    #[test]
    fn unweighted_metric_minimizes_hops() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 3, 1).unwrap();
        g.add_edge(0, 2, 100).unwrap();
        g.add_edge(2, 3, 100).unwrap();
        let um = CostModel::new(Metric::Unweighted, 5);
        let p = shortest_path(&g, &um, 0.into(), 3.into()).unwrap();
        assert_eq!(p.hop_count(), 2); // either 2-hop route; hops, not weights
    }

    #[test]
    fn tie_breaking_is_deterministic() {
        // A 4-cycle has two equal shortest paths between opposite corners;
        // the same seed must always pick the same one.
        let mut g = Graph::new(4);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            g.add_edge(a, b, 1).unwrap();
        }
        let m = CostModel::new(Metric::Weighted, 42);
        let p1 = shortest_path(&g, &m, 0.into(), 2.into()).unwrap();
        let p2 = shortest_path(&g, &m, 0.into(), 2.into()).unwrap();
        let t = shortest_path_tree(&g, &m, 0.into());
        assert_eq!(p1, p2);
        assert_eq!(p1, t.path_to(2.into()).unwrap());
    }

    #[test]
    fn parallel_edges_cheapest_wins() {
        let mut g = Graph::new(2);
        let _pricey = g.add_edge(0, 1, 9).unwrap();
        let cheap = g.add_edge(0, 1, 1).unwrap();
        let p = shortest_path(&g, &model(), 0.into(), 1.into()).unwrap();
        assert_eq!(p.edges(), &[cheap]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_panics() {
        let g = sample();
        let _ = shortest_path(&g, &model(), 99.into(), 0.into());
    }

    #[test]
    fn early_exit_equals_full_tree_on_random_style_graph() {
        // Deterministic pseudo-random graph; checks early-exit correctness.
        let mut g = Graph::new(30);
        let mut x = 12345u64;
        for _ in 0..80 {
            x = crate::splitmix64(x);
            let a = (x % 30) as usize;
            let b = ((x >> 8) % 30) as usize;
            if a != b {
                let w = ((x >> 16) % 50 + 1) as u32;
                g.add_edge(a, b, w).unwrap();
            }
        }
        let m = model();
        let t = shortest_path_tree(&g, &m, 0.into());
        for v in g.nodes() {
            let got = distance(&g, &m, 0.into(), v).map(|c| c.base);
            assert_eq!(got, t.base_dist(v), "distance to {v}");
        }
    }
}
