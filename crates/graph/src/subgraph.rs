//! Subgraph extraction with edge-id mapping.
//!
//! The paper's motivating deployments (§1) maintain *several* families of
//! shortest paths: over the full topology, over "all the OC48 links", over
//! "links with available capacity", and so on. Each family is the same
//! machinery run over a **subnet restriction** — a subgraph on the same
//! node set. [`extract_subgraph`] builds that subgraph and keeps the edge
//! mappings in both directions so failures (expressed in parent-graph ids)
//! and restorations (paths in subgraph ids) can cross the boundary.

use crate::{EdgeId, EdgeRecord, FailureSet, Graph, Path};

/// A subgraph on the same node set, with edge-id mappings to and from the
/// parent graph.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The extracted graph (same node count as the parent; only edges
    /// satisfying the predicate).
    pub graph: Graph,
    to_parent: Vec<EdgeId>,
    from_parent: Vec<Option<EdgeId>>,
}

impl Subgraph {
    /// The parent-graph id of subgraph edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range for the subgraph.
    pub fn to_parent(&self, e: EdgeId) -> EdgeId {
        self.to_parent[e.index()]
    }

    /// The subgraph id of parent edge `e`, if the edge was kept.
    pub fn from_parent(&self, e: EdgeId) -> Option<EdgeId> {
        self.from_parent.get(e.index()).copied().flatten()
    }

    /// Translates a failure set expressed in parent ids into subgraph ids
    /// (failed edges outside the subgraph are dropped; failed nodes are
    /// shared, as the node set is).
    pub fn failures_from_parent(&self, failures: &FailureSet) -> FailureSet {
        let mut out = FailureSet::new();
        for e in failures.failed_edges() {
            if let Some(sub) = self.from_parent(e) {
                out.fail_edge(sub);
            }
        }
        for v in failures.failed_nodes() {
            out.fail_node(v);
        }
        out
    }

    /// Translates a subgraph path into a parent-graph path (node ids are
    /// shared; edge ids are mapped).
    pub fn path_to_parent(&self, path: &Path) -> Path {
        let edges: Vec<EdgeId> = path.edges().iter().map(|&e| self.to_parent(e)).collect();
        Path::from_parts_unchecked(path.nodes().to_vec(), edges)
    }
}

/// Extracts the subgraph of `graph` keeping exactly the edges for which
/// `keep` returns `true`. The node set is unchanged (nodes may become
/// isolated).
pub fn extract_subgraph(
    graph: &Graph,
    mut keep: impl FnMut(EdgeId, &EdgeRecord) -> bool,
) -> Subgraph {
    let mut sub = Graph::with_capacity(graph.node_count(), graph.edge_count());
    let mut to_parent = Vec::new();
    let mut from_parent = vec![None; graph.edge_count()];
    for (e, rec) in graph.edges() {
        if keep(e, rec) {
            let id = sub
                .add_edge(rec.u, rec.v, rec.weight)
                .expect("invariant: edge valid in parent, valid in subgraph");
            from_parent[e.index()] = Some(id);
            to_parent.push(e);
        }
    }
    Subgraph {
        graph: sub,
        to_parent,
        from_parent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{shortest_path, CostModel, Metric, NodeId};

    fn mixed() -> Graph {
        // Weights 1 = fast links, 10 = slow links.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 10).unwrap();
        g.add_edge(2, 3, 1).unwrap();
        g.add_edge(0, 3, 10).unwrap();
        g.add_edge(0, 2, 1).unwrap();
        g
    }

    #[test]
    fn extraction_keeps_matching_edges() {
        let g = mixed();
        let sub = extract_subgraph(&g, |_, rec| rec.weight == 1);
        assert_eq!(sub.graph.node_count(), 4);
        assert_eq!(sub.graph.edge_count(), 3);
        for e in sub.graph.edge_ids() {
            assert_eq!(sub.graph.weight(e), 1);
            // Round trip.
            assert_eq!(sub.from_parent(sub.to_parent(e)), Some(e));
        }
    }

    #[test]
    fn dropped_edges_map_to_none() {
        let g = mixed();
        let sub = extract_subgraph(&g, |_, rec| rec.weight == 1);
        let slow = g.find_edge(1.into(), 2.into()).unwrap();
        assert_eq!(sub.from_parent(slow), None);
    }

    #[test]
    fn failure_translation() {
        let g = mixed();
        let sub = extract_subgraph(&g, |_, rec| rec.weight == 1);
        let fast = g.find_edge(0.into(), 1.into()).unwrap();
        let slow = g.find_edge(0.into(), 3.into()).unwrap();
        let mut f = FailureSet::of_edge(fast);
        f.fail_edge(slow);
        f.fail_node(NodeId::new(2));
        let mapped = sub.failures_from_parent(&f);
        assert_eq!(mapped.failed_edge_count(), 1); // the slow edge dropped
        assert!(mapped.node_failed(NodeId::new(2)));
    }

    #[test]
    fn paths_round_trip_to_parent() {
        let g = mixed();
        let sub = extract_subgraph(&g, |_, rec| rec.weight == 1);
        let m = CostModel::new(Metric::Weighted, 5);
        let p = shortest_path(&sub.graph, &m, 0.into(), 3.into()).unwrap();
        let parent = sub.path_to_parent(&p);
        assert_eq!(parent.nodes(), p.nodes());
        // Every mapped edge exists in the parent and joins the same nodes.
        for (i, &e) in parent.edges().iter().enumerate() {
            let rec = g.edge(e);
            assert!(rec.touches(parent.nodes()[i]));
            assert!(rec.touches(parent.nodes()[i + 1]));
        }
    }

    #[test]
    fn empty_restriction_isolates_everything() {
        let g = mixed();
        let sub = extract_subgraph(&g, |_, _| false);
        assert_eq!(sub.graph.edge_count(), 0);
        assert_eq!(sub.graph.node_count(), 4);
    }
}
