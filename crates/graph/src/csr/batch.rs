//! Batched multi-source shortest-path-tree kernel.
//!
//! The provisioning sweep — `DenseBasePaths::build`, every
//! `ShardedBasePaths` shard build, the paper-scale eval — is *n*
//! independent full-tree Dijkstras over one frozen [`CsrGraph`]. The
//! scalar path ([`CsrGraph::full_tree`]) is already allocation-free, but
//! every one of its runs pays three per-edge costs that a *batch* can
//! amortize or eliminate:
//!
//! * it streams 32-byte [`HalfEdge`](super::CsrGraph) records whose
//!   precomputed `u128` weight and `u64` base are derivable from 12
//!   bytes;
//! * it re-evaluates the failure-mask predicate (two bitset probes) for
//!   every half-edge of every source;
//! * its `BinaryHeap<Reverse<u128>>` has no decrease-key: every
//!   improvement pushes a fresh 16-byte entry, so the heap holds (and
//!   later pops and discards) one stale duplicate per improvement — and
//!   every entry carries the full 128-bit perturbed distance through
//!   every sift.
//!
//! This module is the batch-shaped replacement:
//!
//! * **once per batch**, the kernel compacts the adjacency into 12-byte
//!   slim half-edges (`target`, `edge`, `base`) with the failure mask
//!   *pre-applied* — masked edges simply do not exist in the compacted
//!   CSR, so the per-source hot loop has no mask branch and streams
//!   2.7× less edge data. The perturbed weight is reconstructed on the
//!   fly from the model seed (`(base << 64) | pad(edge)`, the exact
//!   [`CostModel::perturbed_weight`](crate::CostModel::perturbed_weight)
//!   expression), trading ~5 ALU ops for 20 bytes of memory traffic per
//!   relaxation;
//! * the per-node hot record ([`SptBatchScratch`]) is packed to
//!   **exactly 32 bytes** (`dist`/`hops`/`parent_node`/`parent_edge`) —
//!   two-thirds of the scalar record, two per cache line, never
//!   straddling one — with the same epoch-stamped O(1) reset discipline
//!   as the scalar scratch. The stamp itself lives in a separate
//!   L1-resident one-byte lane so the settled-target fast path of a
//!   relaxation never touches the record line, and the base-metric
//!   distance is not stored at all: it is the high 64 bits of `dist`
//!   (44-bit pads cannot carry across bit 64 on any supported path),
//!   recovered at harvest with one shift;
//! * a **decrease-key frontier keyed by base distance** — one entry per
//!   touched node, a `pos[]` array keyed by node id, 8-byte `u64` keys
//!   (the *base* distance, not the padded `u128`; validity argument
//!   below). An improvement re-keys the node in place; no duplicate
//!   entries, so the pop count equals the settle count exactly, and
//!   pad-only improvements skip the frontier entirely. Two disciplines
//!   share the search loop through a monomorphized `Frontier` trait:
//!   when every base weight in the compacted batch is
//!   ≤ `BUCKET_MAX_WEIGHT` (OSPF-style metrics — every topology family
//!   in the eval), **Dial's monotone bucket ring** makes push, pop, and
//!   decrease-key O(1) division-free array ops; otherwise an **indexed
//!   4-ary heap** (u64 key lane + u32 node lane) whose layout halves the
//!   sift depth and puts all four children's keys on one 32-byte run;
//! * a **prefetch-friendly tree harvest**: one sequential pass over the
//!   packed records writes each output element exactly once (settled
//!   value or unreachable sentinel) into the flat per-field output
//!   arrays — no random-order stores, no sentinel prefill.
//!
//! # Why `u64` base-distance frontier keys are exact
//!
//! Every perturbed weight is `(base << 64) | pad` with a 44-bit pad and
//! `base ≥ 1` ([`CostModel`]; zero weights are
//! rejected at graph construction). A path of fewer than 2²⁰ hops (the
//! [`MAX_NODES`](crate::CostModel::MAX_NODES) ceiling) accumulates a pad
//! sum strictly below 2⁶⁴, so pads can never carry into the base half
//! and `perturbed_dist = (base_dist << 64) + pad_sum` exactly. Dijkstra
//! stays exact under *any* pop order that never pops a node whose
//! distance a frontier neighbor could still improve; keys here order the
//! frontier by base distance with ties broken arbitrarily, and any path
//! through a same-base or later frontier node exceeds the popped node's
//! distance by at least `1 << 64` — more than any pad difference can
//! recover. Relaxations still compare full `u128` distances, so the
//! settled values (and the harvested tree) are **bit-identical** to the
//! scalar path; only the settle *order* may differ, exactly as it
//! already may between the scalar heap and the general-graph path (see
//! [`heap_key`](super::CsrGraph)). Perturbed padded costs make every
//! shortest path unique ([`CostModel`]), so no
//! harvested array depends on settle order. `tests/spt_batch.rs` at the
//! repository root pins this across topology families × failure masks ×
//! batch sizes × thread counts.
//!
//! # Accounting
//!
//! The scratch counts frontier pushes, pops, and decrease-keys across
//! its lifetime. [`par_all_sources_csr`](crate::par::par_all_sources_csr)
//! surfaces the totals through [`ParStats`](crate::par::ParStats), and
//! the core crate records them as `core.provision.heap_*` obs counters,
//! so the duplicate-pop traffic this kernel eliminates is visible in
//! live telemetry (`/metrics`, loadtest window JSONL).

use super::{CsrGraph, FailureMask};
use crate::cost::{splitmix64, CostModel};
use crate::spt::{NO_EDGE, NO_NODE};
use crate::{NodeId, ShortestPathTree};

/// Per-node working record of the batched kernel. Everything a
/// relaxation reads or writes for node `v` lives in these 32 bytes —
/// two-thirds the scalar record, and sized so a record never straddles
/// a cache-line boundary. The base (original-metric) distance is
/// deliberately absent: it is the high 64 bits of `dist`, recovered at
/// harvest time.
#[derive(Debug, Clone, Copy)]
struct BatchRec {
    /// Perturbed distance; the high 64 bits are the base-metric distance.
    dist: u128,
    hops: u32,
    parent_node: u32,
    parent_edge: u32,
}

const EMPTY_BATCH_REC: BatchRec = BatchRec {
    dist: 0,
    hops: 0,
    parent_node: 0,
    parent_edge: 0,
};

// The whole point of the packed record: if a field pushes this past 32
// bytes the kernel quietly loses its cache-line guarantee, so fail the
// build instead.
const _: () = assert!(std::mem::size_of::<BatchRec>() == 32);

/// One compacted half-edge: 12 bytes instead of the scalar path's 32.
/// The perturbed weight is *not* stored — it is recomputed from
/// (`base`, `edge`, model seed) during relaxation, and the failure mask
/// is pre-applied at build time, so the hot loop needs neither the
/// `u128` weight nor a mask probe.
#[derive(Debug, Clone, Copy)]
struct SlimEdge {
    target: u32,
    edge: u32,
    /// Base-metric weight. Both metrics produce values that fit `u32`
    /// (`Weighted` is the configured `u32` link weight, `Unweighted` is
    /// 1); the build asserts it.
    base: u32,
}

const _: () = assert!(std::mem::size_of::<SlimEdge>() == 12);

/// One compacted half-edge of a *unit-weight* batch: the base weight is
/// identically 1, so it is not stored and the hot loop streams 8 bytes
/// per half-edge — a quarter of the scalar path's 32. Unit base weights
/// are the common case (the unweighted metric, and every hop-count
/// topology in the eval), so the batch compaction re-packs into this
/// form whenever the batch's maximum base weight is 1.
#[derive(Debug, Clone, Copy)]
struct UnitEdge {
    target: u32,
    edge: u32,
}

const _: () = assert!(std::mem::size_of::<UnitEdge>() == 8);

/// A compacted half-edge record the search loop can decode — lets
/// [`run_search`] monomorphize over the 12-byte general record and the
/// 8-byte unit-weight record.
trait EdgeRec: Copy {
    /// `(target, edge, base)` of this half-edge.
    fn decode(self) -> (u32, u32, u32);
}

impl EdgeRec for SlimEdge {
    #[inline(always)]
    fn decode(self) -> (u32, u32, u32) {
        (self.target, self.edge, self.base)
    }
}

impl EdgeRec for UnitEdge {
    #[inline(always)]
    fn decode(self) -> (u32, u32, u32) {
        (self.target, self.edge, 1)
    }
}

/// Reusable working memory for [`CsrGraph::full_tree_batch`]: packed
/// 32-byte per-node records, the per-batch compacted slim adjacency, and
/// both frontier disciplines, shared across every source of a batch.
///
/// Reset between sources is O(1) (epoch stamps); buffers grow on demand
/// and are never shrunk, so a scratch that served one batch serves the
/// next without reallocating. Not `Sync`: use one per worker thread (the
/// parallel engine hands each worker exactly one).
///
/// ```
/// use rbpc_graph::{csr::{CsrGraph, SptBatchScratch}, CostModel, Graph, Metric, NodeId};
/// # fn main() -> Result<(), rbpc_graph::GraphError> {
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 2)?;
/// g.add_edge(1, 2, 2)?;
/// let model = CostModel::new(Metric::Weighted, 0);
/// let csr = CsrGraph::new(&g, &model);
/// let mut scratch = SptBatchScratch::new(csr.node_count());
/// let trees = csr.full_tree_batch(&[NodeId::new(0), NodeId::new(2)], None, &mut scratch);
/// assert_eq!(trees[0].base_dist(2.into()), Some(4));
/// assert_eq!(trees[1].base_dist(0.into()), Some(4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SptBatchScratch {
    /// Current run stamp, always even; steps by 2 per source.
    epoch: u32,
    /// One packed record per node (valid when `stamp[v] >= epoch`).
    recs: Vec<BatchRec>,
    /// One-byte epoch stamp per node: `== epoch & 0xff` ⇔ touched (in
    /// the frontier, `pos[v]` valid), `== (epoch & 0xff) + 1` ⇔ settled
    /// this run, anything else stale. Kept out of [`BatchRec`] on
    /// purpose: the whole lane is ~n bytes, so the settled-target fast
    /// path of a relaxation resolves inside this L1-resident lane
    /// without ever touching the 32-byte record line. The one-byte
    /// width forces a full clear every 127 runs — O(n) amortized to
    /// nothing.
    stamp: Vec<u8>,
    /// Frontier position per node, valid only while `stamp[v] == epoch`:
    /// heap slot (4-ary heap) or index within its bucket (Dial ring).
    /// Kept out of [`BatchRec`] for the same reason as the stamps: sift
    /// and bucket traffic stays inside this one small lane instead of
    /// dirtying the record lines.
    pos: Vec<u32>,
    /// Heap key lane: the base distance of each touched-unsettled node
    /// (general-weight frontier).
    keys: Vec<u64>,
    /// Heap node lane, parallel to `keys`.
    hnode: Vec<u32>,
    /// Dial bucket ring (small-weight frontier): `buckets[slot(d)]`
    /// holds the touched-unsettled nodes at base distance `d`. Capacity
    /// is kept across runs; every run drains its buckets completely.
    buckets: Vec<Vec<u32>>,
    /// Compacted per-batch CSR offsets (`soff[u]..soff[u+1]` indexes
    /// `slim`).
    soff: Vec<u32>,
    /// Compacted per-batch slim half-edges, failure mask pre-applied.
    slim: Vec<SlimEdge>,
    /// 8-byte re-pack of `slim` used when the batch is unit-weight
    /// (`slim_wmax <= 1`); empty otherwise.
    unit: Vec<UnitEdge>,
    /// Maximum base weight over `slim` — selects the frontier discipline
    /// (≤ [`BUCKET_MAX_WEIGHT`] ⇒ Dial buckets, else the 4-ary heap).
    slim_wmax: u32,
    runs: u64,
    settled_total: u64,
    heap_pushes: u64,
    heap_pops: u64,
    decrease_keys: u64,
}

impl SptBatchScratch {
    /// A batch scratch with capacity for `n`-node graphs (grows on
    /// demand). All buffers — including the frontier — are reserved up
    /// front, so reuse never reallocates mid-sweep.
    pub fn new(n: usize) -> Self {
        SptBatchScratch {
            epoch: 0,
            recs: vec![EMPTY_BATCH_REC; n],
            stamp: vec![0; n],
            pos: vec![0; n],
            keys: Vec::with_capacity(n),
            hnode: Vec::with_capacity(n),
            buckets: Vec::new(),
            soff: Vec::with_capacity(n + 1),
            slim: Vec::new(),
            unit: Vec::new(),
            slim_wmax: 0,
            runs: 0,
            settled_total: 0,
            heap_pushes: 0,
            heap_pops: 0,
            decrease_keys: 0,
        }
    }

    /// Prepares for one source's run over an `n`-node graph: bumps the
    /// epoch (handling wrap-around), grows buffers if needed, empties
    /// the frontier (capacity is kept).
    fn begin(&mut self, n: usize) {
        if self.recs.len() < n {
            self.recs.resize(n, EMPTY_BATCH_REC);
            self.stamp.resize(n, 0);
            self.pos.resize(n, 0);
        }
        if self.keys.capacity() < n {
            self.keys.reserve(n - self.keys.len());
            self.hnode.reserve(n.saturating_sub(self.hnode.len()));
        }
        self.epoch = self.epoch.wrapping_add(2);
        if self.epoch & 0xff == 0 {
            // The one-byte stamps wrapped: old stamps could collide with
            // this run's, so clear them and skip past low byte 0 (the
            // cleared value must match no live epoch).
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = self.epoch.wrapping_add(2);
        }
        self.keys.clear();
        self.hnode.clear();
        self.runs += 1;
    }

    /// Number of single-source runs served so far.
    #[inline]
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Total nodes settled across all runs (perf accounting).
    #[inline]
    pub fn settled_total(&self) -> u64 {
        self.settled_total
    }

    /// Frontier insertions across all runs — exactly one per touched
    /// node, never one per improvement (that is the decrease-key win).
    #[inline]
    pub fn heap_pushes(&self) -> u64 {
        self.heap_pushes
    }

    /// Frontier pops across all runs. With decrease-key every pop
    /// settles a node, so this always equals
    /// [`settled_total`](Self::settled_total) — the scalar lazy-deletion
    /// heap pops strictly more.
    #[inline]
    pub fn heap_pops(&self) -> u64 {
        self.heap_pops
    }

    /// Improvements of an already-queued node across all runs — each one
    /// is a relaxation that the scalar path would have turned into a
    /// duplicate heap entry plus a stale pop. Here it is at most an
    /// in-place re-key (and not even that when only pad bits improved:
    /// the base-distance key is unchanged, so the frontier needs no work
    /// at all).
    #[inline]
    pub fn decrease_keys(&self) -> u64 {
        self.decrease_keys
    }
}

/// Weight ceiling for the Dial bucket frontier: with all base weights
/// `<= BUCKET_MAX_WEIGHT`, the frontier spans at most that many distinct
/// base distances, so a ring of `w_max + 1` buckets replaces the heap
/// and every queue operation is O(1). OSPF-style metrics (the paper's
/// networks, the ISP fixture, every topology family in the eval) sit
/// far below this; larger weights fall back to the indexed 4-ary heap.
const BUCKET_MAX_WEIGHT: u32 = 1024;

/// The frontier (priority queue) of the batched kernel, keyed by *base*
/// distance (see the module docs for why `u64` base keys are exact).
/// `pos[]` is threaded through every call so implementations can keep
/// their node→slot index coherent.
trait Frontier {
    /// Inserts a node with the given base-distance key.
    fn push(&mut self, node: u32, key: u64, pos: &mut [u32]);
    /// Removes and returns a node with the minimum key, or `None` when
    /// empty.
    fn pop(&mut self, pos: &mut [u32]) -> Option<u32>;
    /// Re-keys a queued node from `old` to the strictly smaller `new`.
    fn decrease(&mut self, node: u32, old: u64, new: u64, pos: &mut [u32]);
}

/// 4-ary sift-up from `i`: moves the entry at `i` toward the root until
/// its parent key is no larger, updating `pos[]` for every displaced
/// entry.
#[inline]
fn sift_up(keys: &mut [u64], hnode: &mut [u32], pos: &mut [u32], mut i: usize) {
    let key = keys[i];
    let node = hnode[i];
    while i > 0 {
        let p = (i - 1) / 4;
        let pk = keys[p];
        if pk <= key {
            break;
        }
        keys[i] = pk;
        let pn = hnode[p];
        hnode[i] = pn;
        pos[pn as usize] = i as u32;
        i = p;
    }
    keys[i] = key;
    hnode[i] = node;
    pos[node as usize] = i as u32;
}

/// 4-ary sift-down from `i`: moves the entry toward the leaves until no
/// child key is smaller. The four children of one slot are adjacent
/// `u64`s — half a cache line.
#[inline]
fn sift_down(keys: &mut [u64], hnode: &mut [u32], pos: &mut [u32], mut i: usize) {
    let len = keys.len();
    let key = keys[i];
    let node = hnode[i];
    loop {
        let c0 = 4 * i + 1;
        if c0 >= len {
            break;
        }
        let cend = (c0 + 4).min(len);
        let mut mc = c0;
        let mut mk = keys[c0];
        for (off, &ck) in keys[c0 + 1..cend].iter().enumerate() {
            if ck < mk {
                mc = c0 + 1 + off;
                mk = ck;
            }
        }
        if mk >= key {
            break;
        }
        keys[i] = mk;
        let mn = hnode[mc];
        hnode[i] = mn;
        pos[mn as usize] = i as u32;
        i = mc;
    }
    keys[i] = key;
    hnode[i] = node;
    pos[node as usize] = i as u32;
}

/// The general-weight frontier: an indexed 4-ary heap with decrease-key
/// over the scratch's `keys`/`hnode` lanes.
struct QuadHeap<'a> {
    keys: &'a mut Vec<u64>,
    hnode: &'a mut Vec<u32>,
}

impl Frontier for QuadHeap<'_> {
    #[inline]
    fn push(&mut self, node: u32, key: u64, pos: &mut [u32]) {
        self.keys.push(key);
        self.hnode.push(node);
        let end = self.keys.len() - 1;
        sift_up(self.keys, self.hnode, pos, end);
    }

    #[inline]
    fn pop(&mut self, pos: &mut [u32]) -> Option<u32> {
        let top = *self.hnode.first()?;
        let lk = self.keys.pop().unwrap_or(0);
        let ln = self.hnode.pop().unwrap_or(top);
        if !self.keys.is_empty() {
            self.keys[0] = lk;
            self.hnode[0] = ln;
            sift_down(self.keys, self.hnode, pos, 0);
        }
        Some(top)
    }

    #[inline]
    fn decrease(&mut self, node: u32, _old: u64, new: u64, pos: &mut [u32]) {
        let at = pos[node as usize] as usize;
        self.keys[at] = new;
        sift_up(self.keys, self.hnode, pos, at);
    }
}

/// The small-weight frontier: Dial's monotone bucket ring. `cur` sweeps
/// base distances upward; all live keys sit in `[cur, cur + c)` (every
/// edge adds at least 1 and at most `c - 1 = w_max` to a settled
/// distance), so each key maps to exactly one ring slot. The slot is
/// computed *incrementally* — `cur`'s slot index rides along with `cur`
/// and a key's offset from `cur` is a subtract-compare, never a `% c`
/// division (a runtime-divisor `%` costs tens of cycles on every one of
/// the millions of queue ops in a provisioning sweep). Within one bucket
/// every node has the *same* base distance, so LIFO pop order is one of
/// the arbitrary tie orders the kernel's exactness argument already
/// covers.
/// (Unit-weight batches bypass this ring entirely — see
/// [`run_search_unit`].)
struct BucketQueue<'a> {
    buckets: &'a mut [Vec<u32>],
    /// Ring size: `w_max + 1`.
    c: usize,
    /// Current sweep distance (monotonically non-decreasing).
    cur: u64,
    /// Ring slot holding keys equal to `cur`.
    cur_idx: usize,
    /// Queued-node count; buckets drain to exactly zero every run.
    live: usize,
}

impl BucketQueue<'_> {
    /// Ring slot of `key`, which monotonicity guarantees lies in
    /// `[cur, cur + c)`.
    #[inline]
    fn slot(&self, key: u64) -> usize {
        debug_assert!(key >= self.cur && key - self.cur < self.c as u64);
        let off = (key - self.cur) as usize + self.cur_idx;
        if off >= self.c {
            off - self.c
        } else {
            off
        }
    }
}

impl Frontier for BucketQueue<'_> {
    #[inline]
    fn push(&mut self, node: u32, key: u64, pos: &mut [u32]) {
        let b = &mut self.buckets[self.slot(key)];
        pos[node as usize] = b.len() as u32;
        b.push(node);
        self.live += 1;
    }

    #[inline]
    fn pop(&mut self, _pos: &mut [u32]) -> Option<u32> {
        if self.live == 0 {
            return None;
        }
        loop {
            let b = &mut self.buckets[self.cur_idx];
            if let Some(node) = b.pop() {
                self.live -= 1;
                return Some(node);
            }
            self.cur += 1;
            self.cur_idx += 1;
            if self.cur_idx == self.c {
                self.cur_idx = 0;
            }
        }
    }

    #[inline]
    fn decrease(&mut self, node: u32, old: u64, new: u64, pos: &mut [u32]) {
        let ob = self.slot(old);
        let at = pos[node as usize] as usize;
        let moved = self.buckets[ob].swap_remove(at);
        debug_assert_eq!(moved, node, "pos[] must track bucket slots");
        if let Some(&m) = self.buckets[ob].get(at) {
            pos[m as usize] = at as u32;
        }
        let nb = &mut self.buckets[self.slot(new)];
        pos[node as usize] = nb.len() as u32;
        nb.push(node);
    }
}

/// The shared search loop of the batched kernel, monomorphized per
/// frontier discipline. Relaxations compare full `u128` perturbed
/// distances; only the frontier is keyed by the `u64` base half, so the
/// settled records are bit-identical across disciplines (module docs).
#[allow(clippy::too_many_arguments)] // split-borrow plumbing, not an API
#[inline]
fn run_search<E: EdgeRec, Q: Frontier>(
    soff: &[u32],
    slim: &[E],
    seed: u64,
    s: usize,
    ep: u8,
    recs: &mut [BatchRec],
    stamp: &mut [u8],
    pos: &mut [u32],
    q: &mut Q,
    settled_total: &mut u64,
    heap_pushes: &mut u64,
    heap_pops: &mut u64,
    decrease_keys: &mut u64,
) {
    let ep_done = ep + 1;
    recs[s] = BatchRec {
        dist: 0,
        hops: 0,
        parent_node: NO_NODE,
        parent_edge: NO_EDGE,
    };
    stamp[s] = ep;
    q.push(s as u32, 0, pos);
    *heap_pushes += 1;

    // lint:hot: the batched settle loop (every provisioning source runs it).
    while let Some(un) = q.pop(pos) {
        *heap_pops += 1;
        let u = un as usize;
        debug_assert_eq!(
            stamp[u], ep,
            "decrease-key frontier never holds stale entries"
        );
        stamp[u] = ep_done;
        *settled_total += 1;
        let (d, uh) = (recs[u].dist, recs[u].hops);
        // Pad sums along any supported path stay below 2^64 (44-bit
        // pads, < 2^20 hops), so a relaxed distance's base half is
        // always the settled base half plus the edge's base — one u64
        // add, no u128 shifts in the hot loop.
        // lint:allow(hot-path) — `>> 64` leaves exactly the base half; `as u64` discards nothing
        let dhi = (d >> 64) as u64;

        // lint:allow(hot-path) — `soff` has n+1 entries, so `u + 1` is in bounds for every settled node id
        let (lo, hi) = (soff[u] as usize, soff[u + 1] as usize);
        for &se in &slim[lo..hi] {
            let (target, edge, base) = se.decode();
            let v = target as usize;
            // The settled-target fast path never leaves the one-byte
            // stamp lane — no record line is touched.
            let sv = stamp[v];
            if sv == ep_done {
                continue;
            }
            let w = (u128::from(base) << 64) | u128::from(edge_pad(seed, edge));
            let nd = d + w;
            let nk = dhi + u64::from(base);
            // lint:allow(hot-path) — debug-only check; `>> 64` leaves exactly the base half, so `as u64` discards nothing
            debug_assert_eq!(nk, (nd >> 64) as u64, "pads never carry into the base half");
            if sv != ep {
                // First touch: one frontier entry, forever.
                recs[v] = BatchRec {
                    dist: nd,
                    hops: uh + 1,
                    parent_node: un,
                    parent_edge: edge,
                };
                stamp[v] = ep;
                // lint:allow(hot-path) — frontier pushes land in ring buckets that keep their capacity across the batch
                q.push(target, nk, pos);
                *heap_pushes += 1;
            } else if nd < recs[v].dist {
                // Improvement: re-key in place, no duplicate entry. If
                // only pad bits improved, the u64 base key is unchanged
                // and the frontier needs no work at all.
                // lint:allow(hot-path) — `>> 64` leaves exactly the base half; `as u64` discards nothing
                let ok = (recs[v].dist >> 64) as u64;
                recs[v] = BatchRec {
                    dist: nd,
                    hops: uh + 1,
                    parent_node: un,
                    parent_edge: edge,
                };
                if nk < ok {
                    q.decrease(target, ok, nk, pos);
                }
                *decrease_keys += 1;
            }
        }
    }
}

/// The unit-weight specialization of [`run_search`]: with every base
/// weight exactly 1, base distance *is* hop count and Dial's ring
/// degenerates to two buckets — the current BFS level and the next. A
/// level-L settle can only key a node at L + 1, so the current level is
/// frozen while it drains and the frontier needs no keys, no `pos[]`
/// bookkeeping, and no per-node `pop`: the kernel sweeps the current
/// level as a slice (sequential reads) and appends first touches to the
/// next (a base-key decrease is impossible — a frontier node's key is L
/// or L + 1 and every fresh relaxation keys at exactly L + 1 — so
/// improvements are pad-only record rewrites that never move a node
/// between levels). Relaxations still compare full `u128` distances, so
/// the settled records stay bit-identical to the scalar path.
///
/// `cur` and `next` are the first two ring buckets, reused as the two
/// level queues; both drain to empty, preserving the scratch invariant.
#[allow(clippy::too_many_arguments)] // split-borrow plumbing, not an API
fn run_search_unit(
    soff: &[u32],
    slim: &[UnitEdge],
    seed: u64,
    s: usize,
    ep: u8,
    recs: &mut [BatchRec],
    stamp: &mut [u8],
    cur: &mut Vec<u32>,
    next: &mut Vec<u32>,
    settled_total: &mut u64,
    heap_pushes: &mut u64,
    heap_pops: &mut u64,
    decrease_keys: &mut u64,
) {
    let ep_done = ep + 1;
    recs[s] = BatchRec {
        dist: 0,
        hops: 0,
        parent_node: NO_NODE,
        parent_edge: NO_EDGE,
    };
    stamp[s] = ep;
    cur.clear();
    next.clear();
    cur.push(s as u32);
    *heap_pushes += 1;

    // lint:hot: the unit-weight level sweep.
    while !cur.is_empty() {
        for &un in cur.iter() {
            *heap_pops += 1;
            let u = un as usize;
            debug_assert_eq!(stamp[u], ep, "level queues never hold stale entries");
            stamp[u] = ep_done;
            *settled_total += 1;
            let (d, uh) = (recs[u].dist, recs[u].hops);

            // lint:allow(hot-path) — `soff` has n+1 entries, so `u + 1` is in bounds for every settled node id
            let (lo, hi) = (soff[u] as usize, soff[u + 1] as usize);
            for &se in &slim[lo..hi] {
                let v = se.target as usize;
                let sv = stamp[v];
                if sv == ep_done {
                    continue;
                }
                let nd = d + ((1u128 << 64) | u128::from(edge_pad(seed, se.edge)));
                if sv != ep {
                    recs[v] = BatchRec {
                        dist: nd,
                        hops: uh + 1,
                        parent_node: un,
                        parent_edge: se.edge,
                    };
                    stamp[v] = ep;
                    // lint:allow(hot-path) — level queues keep their capacity across the batch; pushes are amortized alloc-free
                    next.push(se.target);
                    *heap_pushes += 1;
                } else if nd < recs[v].dist {
                    // Same-level pad improvement: rewrite the record in
                    // place; the node's level (its key) cannot change.
                    recs[v] = BatchRec {
                        dist: nd,
                        hops: uh + 1,
                        parent_node: un,
                        parent_edge: se.edge,
                    };
                    *decrease_keys += 1;
                }
            }
        }
        std::mem::swap(cur, next);
        next.clear();
    }
}

impl CsrGraph {
    /// Computes the full shortest-path trees of every source in
    /// `sources`, in order, through the batched decrease-key kernel —
    /// bit-identical to calling [`CsrGraph::full_tree_masked`] per
    /// source, and ≥1.3× faster on provisioning-sized batches (the
    /// bench gate enforces that floor; see `benches/spt_batch.rs`).
    ///
    /// # Panics
    ///
    /// Panics if any source is out of range or `mask` was built for
    /// different graph dimensions.
    pub fn full_tree_batch(
        &self,
        sources: &[NodeId],
        mask: Option<&FailureMask>,
        scratch: &mut SptBatchScratch,
    ) -> Vec<ShortestPathTree> {
        let mut out = Vec::with_capacity(sources.len());
        self.full_tree_batch_with(sources, mask, scratch, |_, tree| out.push(tree));
        out
    }

    /// [`CsrGraph::full_tree_batch`] delivering each tree through a sink
    /// callback (`sink(i, tree)` receives the tree of `sources[i]`,
    /// in order) instead of collecting a `Vec` — the parallel engine
    /// uses this to write pre-assigned output slots directly.
    ///
    /// # Panics
    ///
    /// Panics if any source is out of range or `mask` was built for
    /// different graph dimensions.
    pub fn full_tree_batch_with(
        &self,
        sources: &[NodeId],
        mask: Option<&FailureMask>,
        scratch: &mut SptBatchScratch,
        mut sink: impl FnMut(usize, ShortestPathTree),
    ) {
        if let Some(m) = mask {
            m.check_dims(self.n, self.m);
        }
        if sources.is_empty() {
            return;
        }
        self.build_slim(mask, scratch);
        for (i, &source) in sources.iter().enumerate() {
            assert!(source.index() < self.n, "source {source} out of range");
            let tree = if mask.is_some_and(|m| m.node_failed(source)) {
                ShortestPathTree::unreachable(source, self.n)
            } else {
                self.batch_tree_inner(source, scratch)
            };
            sink(i, tree);
        }
    }

    /// Compacts the adjacency into the scratch's slim CSR, dropping every
    /// masked half-edge (and the whole adjacency of failed nodes — the
    /// search can never enter them anyway). One sequential O(n + m) pass
    /// amortized across the entire batch.
    fn build_slim(&self, mask: Option<&FailureMask>, scratch: &mut SptBatchScratch) {
        let soff = &mut scratch.soff;
        let slim = &mut scratch.slim;
        soff.clear();
        slim.clear();
        soff.reserve(self.n + 1);
        slim.reserve(self.half.len());
        soff.push(0);
        let seed = self.model.seed();
        let mut wmax = 0u32;
        for u in 0..self.n {
            let dead = mask.is_some_and(|m| m.node_failed(NodeId::new(u)));
            if !dead {
                let (lo, hi) = (self.offsets[u] as usize, self.offsets[u + 1] as usize);
                for he in &self.half[lo..hi] {
                    if mask.is_some_and(|m| m.half_edge_masked(he.edge, he.target)) {
                        continue;
                    }
                    let base = (he.weight >> 64) as u64;
                    assert!(base <= u64::from(u32::MAX), "base weight exceeds u32");
                    debug_assert_eq!(
                        (u128::from(base) << 64) | u128::from(edge_pad(seed, he.edge)),
                        he.weight,
                        "slim edge must reconstruct the precomputed weight exactly"
                    );
                    wmax = wmax.max(base as u32);
                    slim.push(SlimEdge {
                        target: he.target,
                        edge: he.edge,
                        base: base as u32,
                    });
                }
            }
            soff.push(slim.len() as u32);
        }
        scratch.slim_wmax = wmax;
        // Unit-weight batch: re-pack into the 8-byte record once, so
        // every source of the batch streams 33% fewer edge bytes. (One
        // extra sequential O(m) pass, amortized across the batch.)
        scratch.unit.clear();
        if wmax <= 1 {
            scratch.unit.extend(slim.iter().map(|se| UnitEdge {
                target: se.target,
                edge: se.edge,
            }));
        }
    }

    /// One source's run of the batched kernel over the pre-built slim
    /// adjacency (mask already applied at build time). Dispatches the
    /// frontier discipline on the batch's maximum base weight, runs the
    /// monomorphized search, then harvests.
    fn batch_tree_inner(&self, source: NodeId, scratch: &mut SptBatchScratch) -> ShortestPathTree {
        scratch.begin(self.n);
        let ep = (scratch.epoch & 0xff) as u8;
        let ep_done = ep + 1;
        let seed = self.model.seed();
        let SptBatchScratch {
            recs,
            stamp,
            pos,
            keys,
            hnode,
            buckets,
            soff,
            slim,
            unit,
            slim_wmax,
            settled_total,
            heap_pushes,
            heap_pops,
            decrease_keys,
            ..
        } = scratch;
        let recs = &mut recs[..];
        let stamp = &mut stamp[..];
        let pos = &mut pos[..];
        let (soff, slim, unit) = (&soff[..], &slim[..], &unit[..]);
        let s = source.index();
        let pops_before = *heap_pops;

        if *slim_wmax <= 1 {
            // Unit weights: 8-byte edges, level-synchronous two-queue
            // sweep (the first two ring buckets serve as the queues).
            if buckets.len() < 2 {
                buckets.resize_with(2, Vec::new);
            }
            let (b0, b1) = buckets.split_at_mut(1);
            run_search_unit(
                soff,
                unit,
                seed,
                s,
                ep,
                recs,
                stamp,
                &mut b0[0],
                &mut b1[0],
                settled_total,
                heap_pushes,
                heap_pops,
                decrease_keys,
            );
        } else if *slim_wmax <= BUCKET_MAX_WEIGHT {
            let c = *slim_wmax as usize + 1;
            if buckets.len() < c {
                buckets.resize_with(c, Vec::new);
            }
            let mut q = BucketQueue {
                buckets: &mut buckets[..c],
                c,
                cur: 0,
                cur_idx: 0,
                live: 0,
            };
            run_search(
                soff,
                slim,
                seed,
                s,
                ep,
                recs,
                stamp,
                pos,
                &mut q,
                settled_total,
                heap_pushes,
                heap_pops,
                decrease_keys,
            );
        } else {
            let mut q = QuadHeap { keys, hnode };
            run_search(
                soff,
                slim,
                seed,
                s,
                ep,
                recs,
                stamp,
                pos,
                &mut q,
                settled_total,
                heap_pushes,
                heap_pops,
                decrease_keys,
            );
        }

        // Harvest: one sequential pass over the packed records (which sit
        // in L2 after the search); every output element is written
        // exactly once (settled value or unreachable sentinel), and the
        // base-metric distance is the high half of the padded dist —
        // 44-bit pads cannot carry into it. When the search settled every
        // node (a connected graph under no mask — the provisioning
        // steady state), the stamp lane is not consulted at all: the
        // harvest is a straight branch-free record copy-out.
        let n = self.n;
        let settled_run = *heap_pops - pops_before;
        let mut out_dist = Vec::with_capacity(n);
        let mut out_base = Vec::with_capacity(n);
        let mut out_hops = Vec::with_capacity(n);
        let mut out_pe = Vec::with_capacity(n);
        let mut out_pn = Vec::with_capacity(n);
        if settled_run == n as u64 {
            for rec in &recs[..n] {
                out_dist.push(rec.dist);
                out_base.push((rec.dist >> 64) as u64);
                out_hops.push(rec.hops);
                out_pe.push(rec.parent_edge);
                out_pn.push(rec.parent_node);
            }
        } else {
            for (rec, &sv) in recs[..n].iter().zip(&stamp[..n]) {
                if sv == ep_done {
                    out_dist.push(rec.dist);
                    out_base.push((rec.dist >> 64) as u64);
                    out_hops.push(rec.hops);
                    out_pe.push(rec.parent_edge);
                    out_pn.push(rec.parent_node);
                } else {
                    out_dist.push(u128::MAX);
                    out_base.push(u64::MAX);
                    out_hops.push(u32::MAX);
                    out_pe.push(NO_EDGE);
                    out_pn.push(NO_NODE);
                }
            }
        }
        ShortestPathTree::from_arrays(source, out_dist, out_base, out_hops, out_pe, out_pn)
    }
}

/// The per-edge 44-bit padding — exactly
/// [`CostModel::perturbed_weight`](crate::CostModel::perturbed_weight)'s
/// low half, recomputed from the seed instead of loaded from memory.
#[inline]
fn edge_pad(seed: u64, edge: u32) -> u64 {
    splitmix64(seed ^ (u64::from(edge) + 1)) >> (64 - CostModel::PAD_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::DijkstraScratch;
    use crate::{CostModel, DetRng, EdgeId, FailureSet, Graph, Metric};

    fn random_graph(n: usize, m: usize, seed: u64) -> Graph {
        let mut g = Graph::new(n);
        let mut rng = DetRng::seed_from_u64(seed);
        while g.edge_count() < m {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                g.add_edge(a, b, rng.gen_range(1..=50u32)).unwrap();
            }
        }
        g
    }

    #[test]
    fn batch_matches_scalar_unmasked() {
        let g = random_graph(60, 150, 3);
        let model = CostModel::new(Metric::Weighted, 17);
        let csr = CsrGraph::new(&g, &model);
        let mut scalar = DijkstraScratch::new(csr.node_count());
        let mut batch = SptBatchScratch::new(csr.node_count());
        let sources: Vec<NodeId> = g.nodes().collect();
        let want: Vec<_> = sources
            .iter()
            .map(|&s| csr.full_tree(s, &mut scalar))
            .collect();
        let got = csr.full_tree_batch(&sources, None, &mut batch);
        assert_eq!(got, want);
        assert_eq!(batch.runs(), 60);
        assert_eq!(
            batch.heap_pops(),
            batch.settled_total(),
            "decrease-key pops exactly once per settle"
        );
        assert!(batch.decrease_keys() > 0, "a dense graph must improve keys");
    }

    #[test]
    fn batch_matches_scalar_masked_and_failed_source() {
        let g = random_graph(40, 100, 7);
        let model = CostModel::new(Metric::Unweighted, 5);
        let csr = CsrGraph::new(&g, &model);
        let mut set = FailureSet::new();
        set.fail_edge(EdgeId::new(0));
        set.fail_edge(EdgeId::new(13));
        set.fail_node(NodeId::new(3));
        let mask = FailureMask::from_set(&csr, &set);
        let mut scalar = DijkstraScratch::new(csr.node_count());
        let mut batch = SptBatchScratch::new(csr.node_count());
        let sources: Vec<NodeId> = g.nodes().collect(); // includes failed node 3
        let want: Vec<_> = sources
            .iter()
            .map(|&s| csr.full_tree_masked(s, Some(&mask), &mut scalar))
            .collect();
        let got = csr.full_tree_batch(&sources, Some(&mask), &mut batch);
        assert_eq!(got, want);
        assert!(!got[3].reachable(NodeId::new(3)), "failed source tree");
    }

    #[test]
    fn sink_form_preserves_order_and_indices() {
        let g = random_graph(20, 45, 11);
        let model = CostModel::new(Metric::Weighted, 2);
        let csr = CsrGraph::new(&g, &model);
        let mut batch = SptBatchScratch::new(csr.node_count());
        let sources = [NodeId::new(5), NodeId::new(0), NodeId::new(5)];
        let mut seen = Vec::new();
        csr.full_tree_batch_with(&sources, None, &mut batch, |i, t| {
            seen.push((i, t.source()));
        });
        assert_eq!(
            seen,
            vec![
                (0, NodeId::new(5)),
                (1, NodeId::new(0)),
                (2, NodeId::new(5))
            ]
        );
    }

    #[test]
    fn scratch_reuse_across_graphs_grows_and_stays_exact() {
        let model = CostModel::new(Metric::Weighted, 9);
        let mut batch = SptBatchScratch::new(0); // grows on demand
        let mut scalar = DijkstraScratch::new(0);
        for seed in 0..3u64 {
            let g = random_graph(30 + 10 * seed as usize, 80, seed);
            let csr = CsrGraph::new(&g, &model);
            let sources: Vec<NodeId> = g.nodes().collect();
            let want: Vec<_> = sources
                .iter()
                .map(|&s| csr.full_tree(s, &mut scalar))
                .collect();
            assert_eq!(csr.full_tree_batch(&sources, None, &mut batch), want);
        }
        assert!(batch.runs() >= 90);
    }

    #[test]
    fn empty_batch_is_empty() {
        let g = random_graph(10, 20, 1);
        let model = CostModel::new(Metric::Weighted, 1);
        let csr = CsrGraph::new(&g, &model);
        let mut batch = SptBatchScratch::new(csr.node_count());
        assert!(csr.full_tree_batch(&[], None, &mut batch).is_empty());
        assert_eq!(batch.runs(), 0);
    }

    #[test]
    fn epoch_wraparound_resets_stamps() {
        let g = random_graph(15, 35, 4);
        let model = CostModel::new(Metric::Weighted, 6);
        let csr = CsrGraph::new(&g, &model);
        let mut scalar = DijkstraScratch::new(csr.node_count());
        let want = csr.full_tree(NodeId::new(0), &mut scalar);
        let mut batch = SptBatchScratch::new(csr.node_count());
        batch.epoch = u32::MAX - 1;
        for _ in 0..4 {
            let got = csr.full_tree_batch(&[NodeId::new(0)], None, &mut batch);
            assert_eq!(got[0], want);
        }
        assert!(batch.epoch >= 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_panics() {
        let g = random_graph(5, 8, 2);
        let csr = CsrGraph::new(&g, &CostModel::new(Metric::Weighted, 0));
        let mut batch = SptBatchScratch::new(csr.node_count());
        let _ = csr.full_tree_batch(&[NodeId::new(99)], None, &mut batch);
    }

    #[test]
    #[should_panic(expected = "applied to a")]
    fn wrong_dims_mask_panics() {
        let g = random_graph(5, 8, 2);
        let csr = CsrGraph::new(&g, &CostModel::new(Metric::Weighted, 0));
        let mask = FailureMask::new(2, 1);
        let mut batch = SptBatchScratch::new(csr.node_count());
        let _ = csr.full_tree_batch(&[NodeId::new(0)], Some(&mask), &mut batch);
    }

    /// A graph whose base weights exceed [`BUCKET_MAX_WEIGHT`], forcing
    /// the indexed 4-ary heap discipline.
    fn heavy_graph(n: usize, m: usize, seed: u64) -> Graph {
        let mut g = Graph::new(n);
        let mut rng = DetRng::seed_from_u64(seed);
        while g.edge_count() < m {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                g.add_edge(a, b, rng.gen_range(1..=100_000u32)).unwrap();
            }
        }
        g
    }

    #[test]
    fn heavy_weights_take_heap_path_and_match_scalar() {
        let g = heavy_graph(60, 150, 12);
        let model = CostModel::new(Metric::Weighted, 21);
        let csr = CsrGraph::new(&g, &model);
        let mut scalar = DijkstraScratch::new(csr.node_count());
        let mut batch = SptBatchScratch::new(csr.node_count());
        let sources: Vec<NodeId> = g.nodes().collect();
        let want: Vec<_> = sources
            .iter()
            .map(|&s| csr.full_tree(s, &mut scalar))
            .collect();
        let got = csr.full_tree_batch(&sources, None, &mut batch);
        assert_eq!(got, want);
        assert!(
            batch.slim_wmax > BUCKET_MAX_WEIGHT,
            "fixture must actually exercise the heap discipline"
        );
        assert_eq!(batch.heap_pops(), batch.settled_total());
    }

    #[test]
    fn small_weights_take_bucket_path() {
        let g = random_graph(60, 150, 3); // weights 1..=50
        let model = CostModel::new(Metric::Weighted, 17);
        let csr = CsrGraph::new(&g, &model);
        let mut batch = SptBatchScratch::new(csr.node_count());
        let sources: Vec<NodeId> = g.nodes().collect();
        let _ = csr.full_tree_batch(&sources, None, &mut batch);
        assert!(batch.slim_wmax <= BUCKET_MAX_WEIGHT);
        assert!(batch.buckets.len() > 50, "ring sized to w_max + 1");
        assert!(
            batch.buckets.iter().all(Vec::is_empty),
            "every run drains its buckets completely"
        );
        assert!(
            batch.keys.is_empty(),
            "heap lanes unused on the bucket path"
        );
    }

    #[test]
    fn heap_never_reallocates_after_first_batch() {
        let g = heavy_graph(50, 140, 8);
        let model = CostModel::new(Metric::Weighted, 3);
        let csr = CsrGraph::new(&g, &model);
        let mut batch = SptBatchScratch::new(csr.node_count());
        let sources: Vec<NodeId> = g.nodes().collect();
        let _ = csr.full_tree_batch(&sources, None, &mut batch);
        assert!(batch.slim_wmax > BUCKET_MAX_WEIGHT, "heap path required");
        let cap = batch.keys.capacity();
        assert!(cap >= csr.node_count());
        let _ = csr.full_tree_batch(&sources, None, &mut batch);
        assert_eq!(batch.keys.capacity(), cap, "reuse must not reallocate");
    }
}
