//! Graph substrate for *Restoration by Path Concatenation* (RBPC).
//!
//! This crate provides the network-graph machinery the RBPC paper
//! (Afek, Bremler-Barr, Cohen, Kaplan, Merritt, PODC 2001) builds on:
//!
//! * an undirected, weighted **multigraph** ([`Graph`]) — parallel edges are
//!   first-class because several of the paper's constructions need them;
//! * **failure views** ([`FailureSet`], [`FailureView`]) that mask failed
//!   edges and routers without copying the graph;
//! * binary-heap **Dijkstra** over any [`Topology`], producing
//!   [`ShortestPathTree`]s and [`Path`]s;
//! * a deterministic realization of the paper's *infinitesimal weight
//!   padding* ([`CostModel`]): perturbed `u128` costs that make shortest
//!   paths unique with overwhelming probability while preserving the
//!   original cost order (Theorem 3 of the paper);
//! * shortest-path **counting** (for the paper's redundancy statistic),
//!   BFS, connectivity, and a union-find.
//!
//! # Example
//!
//! ```
//! use rbpc_graph::{Graph, CostModel, Metric, shortest_path, FailureSet};
//!
//! # fn main() -> Result<(), rbpc_graph::GraphError> {
//! let mut g = Graph::new(4);
//! let ab = g.add_edge(0, 1, 1)?;
//! g.add_edge(1, 2, 1)?;
//! g.add_edge(0, 3, 1)?;
//! g.add_edge(3, 2, 1)?;
//!
//! let cost = CostModel::new(Metric::Weighted, 42);
//! let p = shortest_path(&g, &cost, 0.into(), 2.into()).expect("connected");
//! assert_eq!(p.hop_count(), 2);
//!
//! // Fail whichever two-hop route was chosen; the other one takes over.
//! let mut failures = FailureSet::new();
//! failures.fail_edge(p.edges()[0]);
//! let view = failures.view(&g);
//! let q = shortest_path(&view, &cost, 0.into(), 2.into()).expect("still connected");
//! assert_eq!(q.hop_count(), 2);
//! assert_ne!(p.edges()[0], q.edges()[0]);
//! # let _ = ab;
//! # Ok(())
//! # }
//! ```
//!
//! The full paper-to-code map (theorems, figures, tables -> modules and
//! tests) is in `docs/PAPER_MAP.md` at the repository root;
//! `docs/ARCHITECTURE.md` shows how the crates fit together.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod bfs;
mod cost;
mod counting;
pub mod csr;
mod cuts;
mod digraph;
mod dijkstra;
pub mod dynamic;
mod error;
mod graph;
mod ids;
pub mod par;
mod path;
mod rng;
mod spt;
mod subgraph;
mod unionfind;
mod view;
mod yen;

pub use bfs::{bfs_distances, connected_components, is_connected, ComponentLabels};
pub use cost::{splitmix64, CostModel, Metric, PathCost};
pub use counting::{count_shortest_paths, max_shortest_path_multiplicity};
pub use csr::{CsrGraph, DijkstraScratch, FailureMask, SptBatchScratch};
pub use cuts::{cut_elements, CutElements};
pub use digraph::{ArcId, ArcRecord, DiGraph};
pub use dijkstra::{distance, shortest_path, shortest_path_avoiding, shortest_path_tree};
pub use dynamic::{
    repair_after_failure, repair_after_failures, repair_after_failures_with,
    repair_after_recoveries, repair_after_recoveries_with, repair_after_recovery, DynamicSpt,
    RepairScratch, RepairStats,
};
pub use error::{GraphError, PathError};
pub use graph::{DegreeStats, EdgeRecord, Graph, HalfEdge};
pub use ids::{EdgeId, NodeId};
pub use par::{par_all_sources, par_all_sources_csr, ParStats, PAR_SERIAL_CUTOFF};
pub use path::Path;
pub use rng::{DetRng, SampleRange};
pub use spt::{FlatChildren, ShortestPathTree};
pub use subgraph::{extract_subgraph, Subgraph};
pub use unionfind::UnionFind;
pub use view::{FailureSet, FailureView, Topology};
pub use yen::k_shortest_paths;
