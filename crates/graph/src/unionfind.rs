//! Disjoint-set union (union-find) with path compression and union by rank.

/// A classic union-find over dense indices, used by topology generators to
/// guarantee connectivity without repeated BFS.
///
/// ```
/// use rbpc_graph::UnionFind;
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(uf.union(2, 3));
/// assert!(!uf.same(0, 2));
/// assert!(uf.union(1, 2));
/// assert!(uf.same(0, 3));
/// assert_eq!(uf.set_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x as u32;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x as u32;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root as usize
    }

    /// Merges the sets of `a` and `b`. Returns `true` if they were distinct.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.sets -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
        assert!(!uf.same(0, 1));
        assert_eq!(uf.find(2), 2);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(1, 2));
        assert_eq!(uf.set_count(), 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn long_chain_compresses() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.set_count(), 1);
        assert!(uf.same(0, n - 1));
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
    }
}
