//! In-tree deterministic PRNG — the offline replacement for `rand`.
//!
//! The generator is a SplitMix64 stream: the same mixer [`splitmix64`]
//! that realizes the [`CostModel`](crate::CostModel) infinitesimal
//! padding, driven by a Weyl sequence. It is fast, has a full 2^64
//! period, and is exactly reproducible per seed across platforms — all
//! the topology generators, samplers, and randomized tests in this
//! workspace need, without any external dependency.
//!
//! The API mirrors the subset of `rand` the workspace used
//! (`seed_from_u64`, `gen_range`, `gen_bool`), so call sites only swap
//! their `use` lines.
//!
//! ```
//! use rbpc_graph::DetRng;
//! let mut rng = DetRng::seed_from_u64(7);
//! let a = rng.gen_range(0..10usize);
//! assert!(a < 10);
//! let w = rng.gen_range(1..=5u32);
//! assert!((1..=5).contains(&w));
//! let mut again = DetRng::seed_from_u64(7);
//! assert_eq!(again.gen_range(0..10usize), a);
//! ```

use crate::splitmix64;
use std::ops::{Range, RangeInclusive};

/// Weyl-sequence increment of the SplitMix64 generator (golden-ratio
/// constant, the canonical choice).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A deterministic SplitMix64 pseudo-random generator.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed. Equal seeds produce equal
    /// streams; nearby seeds produce unrelated streams (the seed is mixed
    /// once before use).
    pub fn seed_from_u64(seed: u64) -> Self {
        DetRng {
            state: splitmix64(seed),
        }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        splitmix64(self.state)
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `u64` in `[0, span)` via Lemire's multiply-shift reduction.
    #[inline]
    fn bounded(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// Integer ranges [`DetRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled integer type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut DetRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut DetRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.bounded(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut DetRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample an empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every output is in range.
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded(span) as $t
            }
        }
    )+};
}

impl_sample_range!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(1);
        let mut c = DetRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = DetRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(5..17usize);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(1..=6u32);
            assert!((1..=6).contains(&y));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = DetRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn uniformity_is_rough_but_sane() {
        let mut rng = DetRng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            // Expected 10 000; allow ±5 %.
            assert!((9_500..=10_500).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = DetRng::seed_from_u64(6);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = DetRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..=3_300).contains(&hits), "hits = {hits}");
        let mut rng = DetRng::seed_from_u64(8);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        let mut rng = DetRng::seed_from_u64(9);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        DetRng::seed_from_u64(0).gen_range(3..3usize);
    }

    #[test]
    fn single_value_inclusive_range() {
        let mut rng = DetRng::seed_from_u64(10);
        for _ in 0..10 {
            assert_eq!(rng.gen_range(4..=4u32), 4);
        }
    }
}
