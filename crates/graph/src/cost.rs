//! Cost models: the weighted/unweighted metric and the deterministic
//! realization of the paper's "infinitesimal padding".
//!
//! Theorem 3 of the RBPC paper selects a base set with *exactly one*
//! shortest path per pair by padding each edge weight with an infinitesimal
//! so that shortest paths become unique. We realize that padding exactly:
//! the perturbed cost of an edge is
//!
//! ```text
//! ŵ(e) = (w(e) as u128) << 64  |  (splitmix64(seed ^ (e + 1)) >> 20)
//! ```
//!
//! The 44-bit padding guarantees that summing it along any path of fewer
//! than 2^20 hops stays below 2^64 and never carries into the base-weight
//! bits, so a path with smaller *original* cost always has smaller
//! perturbed cost. Ties in the original metric are broken by the
//! pseudo-random low bits, making shortest paths unique except with
//! negligible probability — the computational analogue of infinitesimal
//! padding.

use crate::{EdgeId, Graph};

/// Distance metric used by an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Metric {
    /// Use the configured OSPF-style link weights (the paper's
    /// "ISP, Weighted" rows).
    #[default]
    Weighted,
    /// Charge 1 per hop regardless of configured weights (the paper's
    /// "Unweighted" rows, where Theorem 1 applies).
    Unweighted,
}

impl Metric {
    /// The base (unperturbed) cost this metric assigns to edge `e`.
    #[inline]
    pub fn base_weight(self, graph: &Graph, e: EdgeId) -> u64 {
        match self {
            Metric::Weighted => u64::from(graph.weight(e)),
            Metric::Unweighted => 1,
        }
    }
}

/// SplitMix64 — the small, high-quality 64-bit mixer used to derive
/// per-edge padding deterministically from a seed.
///
/// ```
/// use rbpc_graph::splitmix64;
/// assert_ne!(splitmix64(1), splitmix64(2));
/// assert_eq!(splitmix64(7), splitmix64(7));
/// ```
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The cost of a path under a [`CostModel`]: the original-metric cost, the
/// tie-broken perturbed cost, and the hop count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PathCost {
    /// Sum of base weights along the path (what the paper reports).
    pub base: u64,
    /// Sum of perturbed weights (used only for unique tie-breaking).
    pub perturbed: u128,
    /// Number of edges on the path.
    pub hops: u32,
}

impl PathCost {
    /// The zero cost (an empty path).
    pub const ZERO: PathCost = PathCost {
        base: 0,
        perturbed: 0,
        hops: 0,
    };

    /// Adds one edge's cost to this accumulated cost.
    #[inline]
    pub fn plus_edge(self, model: &CostModel, graph: &Graph, e: EdgeId) -> PathCost {
        PathCost {
            base: self.base + model.base_weight(graph, e),
            perturbed: self.perturbed + model.perturbed_weight(graph, e),
            hops: self.hops + 1,
        }
    }
}

/// A metric plus a perturbation seed: everything needed to evaluate edge
/// and path costs with unique tie-breaking.
///
/// Two `CostModel`s with the same metric and seed produce identical
/// perturbations, so independently computed shortest-path trees agree on
/// which of several equal-cost paths is "the" base path — the property the
/// greedy decomposition of §4.1 of the paper relies on.
///
/// ```
/// use rbpc_graph::{CostModel, Graph, Metric};
/// # fn main() -> Result<(), rbpc_graph::GraphError> {
/// let mut g = Graph::new(2);
/// let e = g.add_edge(0, 1, 7)?;
/// let m = CostModel::new(Metric::Weighted, 1);
/// assert_eq!(m.base_weight(&g, e), 7);
/// assert_eq!(m.perturbed_weight(&g, e) >> 64, 7);
/// let u = CostModel::new(Metric::Unweighted, 1);
/// assert_eq!(u.base_weight(&g, e), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostModel {
    metric: Metric,
    seed: u64,
}

impl CostModel {
    /// Bits of per-edge padding entropy. `2^(64 - PAD_BITS)` bounds the
    /// supported path length (in hops) without padding overflow.
    pub const PAD_BITS: u32 = 44;

    /// Maximum supported number of nodes per graph, implied by
    /// [`CostModel::PAD_BITS`]: a simple path has at most `n − 1` hops.
    pub const MAX_NODES: usize = 1 << (64 - Self::PAD_BITS);

    /// Creates a cost model with the given metric and perturbation seed.
    pub fn new(metric: Metric, seed: u64) -> Self {
        CostModel { metric, seed }
    }

    /// The metric in use.
    #[inline]
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The perturbation seed in use.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Base (original-metric) weight of edge `e`.
    #[inline]
    pub fn base_weight(&self, graph: &Graph, e: EdgeId) -> u64 {
        self.metric.base_weight(graph, e)
    }

    /// Perturbed weight of edge `e`: base weight in the high 64 bits,
    /// deterministic pseudo-random padding in the low 64 bits.
    ///
    /// The padding is truncated to 44 bits so that summing it along any
    /// path of fewer than 2^20 hops stays below 2^64 and can never carry
    /// into the base-weight bits — the "infinitesimal" property. Graphs in
    /// this crate family are therefore limited to 2^20 nodes (the paper's
    /// largest network has 40 377).
    #[inline]
    pub fn perturbed_weight(&self, graph: &Graph, e: EdgeId) -> u128 {
        let base = u128::from(self.metric.base_weight(graph, e));
        let pad = splitmix64(self.seed ^ (e.index() as u64 + 1)) >> (64 - Self::PAD_BITS);
        (base << 64) | u128::from(pad)
    }

    /// Cost of a path given as an edge sequence.
    pub fn path_cost(&self, graph: &Graph, edges: &[EdgeId]) -> PathCost {
        edges
            .iter()
            .fold(PathCost::ZERO, |acc, &e| acc.plus_edge(self, graph, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_route_graph() -> (Graph, Vec<EdgeId>) {
        // 0 -1- 1 -1- 2   and   0 -2- 2 : equal total weight (2) both ways.
        let mut g = Graph::new(3);
        let e = vec![
            g.add_edge(0, 1, 1).unwrap(),
            g.add_edge(1, 2, 1).unwrap(),
            g.add_edge(0, 2, 2).unwrap(),
        ];
        (g, e)
    }

    #[test]
    fn perturbed_preserves_base_order() {
        let (g, e) = two_route_graph();
        let m = CostModel::new(Metric::Weighted, 99);
        // Path of base cost 2 always beats any path of base cost 3.
        let cheap = m.perturbed_weight(&g, e[2]);
        let expensive = m.perturbed_weight(&g, e[0])
            + m.perturbed_weight(&g, e[1])
            + m.perturbed_weight(&g, e[2]);
        assert!(cheap < expensive);
    }

    #[test]
    fn equal_base_paths_get_strict_order() {
        let (g, e) = two_route_graph();
        let m = CostModel::new(Metric::Weighted, 7);
        let via1 = m.perturbed_weight(&g, e[0]) + m.perturbed_weight(&g, e[1]);
        let direct = m.perturbed_weight(&g, e[2]);
        assert_eq!(via1 >> 64, direct >> 64); // same base cost...
        assert_ne!(via1, direct); // ...but strictly ordered after padding
    }

    #[test]
    fn deterministic_across_models() {
        let (g, e) = two_route_graph();
        let a = CostModel::new(Metric::Weighted, 5);
        let b = CostModel::new(Metric::Weighted, 5);
        let c = CostModel::new(Metric::Weighted, 6);
        assert_eq!(a.perturbed_weight(&g, e[0]), b.perturbed_weight(&g, e[0]));
        assert_ne!(a.perturbed_weight(&g, e[0]), c.perturbed_weight(&g, e[0]));
    }

    #[test]
    fn unweighted_charges_one_per_hop() {
        let (g, e) = two_route_graph();
        let m = CostModel::new(Metric::Unweighted, 0);
        assert_eq!(m.base_weight(&g, e[2]), 1);
        let cost = m.path_cost(&g, &[e[0], e[1]]);
        assert_eq!(cost.base, 2);
        assert_eq!(cost.hops, 2);
    }

    #[test]
    fn path_cost_accumulates() {
        let (g, e) = two_route_graph();
        let m = CostModel::new(Metric::Weighted, 3);
        let c = m.path_cost(&g, &[e[0], e[1]]);
        assert_eq!(c.base, 2);
        assert_eq!(c.hops, 2);
        assert_eq!(
            c.perturbed,
            m.perturbed_weight(&g, e[0]) + m.perturbed_weight(&g, e[1])
        );
        assert_eq!(m.path_cost(&g, &[]), PathCost::ZERO);
    }

    #[test]
    fn splitmix_spreads() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            seen.insert(splitmix64(i));
        }
        assert_eq!(seen.len(), 1000);
    }
}
