//! Std-only parallel batch Dijkstra: the RBPC provisioning fan-out.
//!
//! Provisioning computes one shortest-path tree per source — *n*
//! independent Dijkstras. This module runs them on a `std::thread::scope`
//! work pool: sources are cut into fixed chunks, worker threads claim
//! chunks through a single `AtomicUsize` (lock-free stealing, so an
//! unlucky thread that draws the expensive sources does not serialize the
//! batch), and each thread runs its chunks through the **batched
//! decrease-key kernel** ([`CsrGraph::full_tree_batch_with`]), reusing
//! one [`SptBatchScratch`] across all the trees it computes — the
//! structure-of-arrays working state and the indexed 4-ary heap are
//! allocated once per worker, never per chunk or per source.
//!
//! # Determinism
//!
//! Results are written into an output slot pre-assigned per source
//! (`result[i]` is the tree of `sources[i]`), so the merge is a no-op and
//! the output order never depends on scheduling. The tree *contents* are
//! scheduling-independent too: perturbed costs make every shortest path
//! unique (see [`CostModel`]), so any thread computing the tree of source
//! `s` produces bit-identical arrays. `par_all_sources` with 1, 2, or 64
//! threads returns byte-for-byte the same `Vec<ShortestPathTree>` as the
//! sequential [`shortest_path_tree`](crate::shortest_path_tree) loop —
//! enforced by `tests/csr_parallel.rs` at the repository root.
//!
//! This crate forbids `unsafe`, so output pre-slicing uses a `Mutex`
//! hand-off: each chunk's `&mut` output slice sits in a `Mutex<Option<…>>`
//! claimed exactly once by the thread that wins its index. The mutexes are
//! uncontended by construction (the atomic hands each index to one
//! thread), so the cost is one lock per chunk, not per tree.

use crate::csr::{CsrGraph, FailureMask, SptBatchScratch};
use crate::{CostModel, Graph, NodeId, ShortestPathTree};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Per-thread accounting from a [`par_all_sources`] run, for obs counters
/// at the call site (`rbpc-graph` itself carries no instrumentation).
#[derive(Debug, Clone, Default)]
pub struct ParStats {
    /// Worker threads used (1 means the run was inline, no spawning).
    pub threads: usize,
    /// Number of chunks the source list was cut into.
    pub chunks: usize,
    /// Sources per chunk (last chunk may be smaller).
    pub chunk_size: usize,
    /// Chunks claimed by each thread — the "steal" distribution.
    pub chunk_claims: Vec<u64>,
    /// Nodes settled by each thread across all its Dijkstra runs.
    pub settled: Vec<u64>,
    /// Dijkstra runs each thread served from its one scratch arena.
    pub scratch_runs: Vec<u64>,
    /// Heap insertions per thread — with the decrease-key kernel, exactly
    /// one per touched node (the lazy-deletion heap pushed one per
    /// *improvement*).
    pub heap_pushes: Vec<u64>,
    /// Heap pops per thread — equals that thread's settled count under
    /// decrease-key; the surplus the scalar heap used to pop and discard
    /// is gone.
    pub heap_pops: Vec<u64>,
    /// In-place key decreases per thread: improvements absorbed without a
    /// duplicate heap entry.
    pub decrease_keys: Vec<u64>,
}

impl ParStats {
    /// Total chunks claimed (equals [`ParStats::chunks`] after a full run).
    pub fn total_chunks_claimed(&self) -> u64 {
        self.chunk_claims.iter().sum()
    }

    /// Total nodes settled across all threads.
    pub fn total_settled(&self) -> u64 {
        self.settled.iter().sum()
    }

    /// Scratch reuses: runs beyond the first per allocated arena.
    pub fn total_scratch_reuses(&self) -> u64 {
        self.scratch_runs.iter().map(|&r| r.saturating_sub(1)).sum()
    }

    /// Total heap insertions across all threads.
    pub fn total_heap_pushes(&self) -> u64 {
        self.heap_pushes.iter().sum()
    }

    /// Total heap pops across all threads.
    pub fn total_heap_pops(&self) -> u64 {
        self.heap_pops.iter().sum()
    }

    /// Total in-place key decreases across all threads.
    pub fn total_decrease_keys(&self) -> u64 {
        self.decrease_keys.iter().sum()
    }
}

/// Node count below which a parallel batch runs inline instead.
///
/// Spawning workers, fencing the claim atomic, and handing chunks
/// through mutexes costs tens of microseconds — more than a whole batch
/// of Dijkstras on a small graph, which is why
/// `par_provision/isp_200/threads_8` used to *lose* to `threads_1`. Below
/// this threshold [`par_all_sources`] ignores the requested thread count
/// and runs the single-thread path ([`ParStats::threads`] reports what
/// was actually used). Results are bit-identical either way, so the
/// cutoff is purely a scheduling decision.
pub const PAR_SERIAL_CUTOFF: usize = 1_000;

/// Deterministic chunk size: small enough to balance, large enough that
/// the per-chunk mutex hand-off is noise.
fn chunk_size_for(len: usize, threads: usize) -> usize {
    len.div_ceil(threads.max(1) * 4).max(1)
}

/// Computes the shortest-path trees of `sources` over `graph` under
/// `model` on `threads` worker threads.
///
/// Builds a [`CsrGraph`] once and fans out; `result[i]` is the tree of
/// `sources[i]`, bit-identical to
/// [`shortest_path_tree`](crate::shortest_path_tree)`(graph, model,
/// sources[i])` for every thread count. `threads == 0` is treated as 1;
/// with 1 thread — requested, or forced by the [`PAR_SERIAL_CUTOFF`]
/// on small graphs — the batch runs inline on the caller's thread.
///
/// # Panics
///
/// Panics if any source is out of range or the graph exceeds
/// [`CostModel::MAX_NODES`] nodes.
pub fn par_all_sources(
    graph: &Graph,
    model: &CostModel,
    sources: &[NodeId],
    threads: usize,
) -> (Vec<ShortestPathTree>, ParStats) {
    let csr = CsrGraph::new(graph, model);
    par_all_sources_csr(&csr, None, sources, threads)
}

/// [`par_all_sources`] over a prebuilt [`CsrGraph`], with an optional
/// failure mask applied to every tree.
///
/// Use this form to amortize the CSR build across batches, or to
/// provision under a failure scenario. Every chunk runs through the
/// batched decrease-key kernel ([`CsrGraph::full_tree_batch_with`]); the
/// returned [`ParStats`] carry per-thread heap push/pop/decrease-key
/// totals so callers can surface the kernel's traffic as metrics.
///
/// # Panics
///
/// Panics if any source is out of range, or `mask` was built for
/// different graph dimensions.
pub fn par_all_sources_csr(
    csr: &CsrGraph,
    mask: Option<&FailureMask>,
    sources: &[NodeId],
    threads: usize,
) -> (Vec<ShortestPathTree>, ParStats) {
    let threads = if csr.node_count() < PAR_SERIAL_CUTOFF {
        1
    } else {
        threads.max(1)
    };
    let chunk = chunk_size_for(sources.len(), threads);
    let mut stats = ParStats {
        threads,
        chunks: sources.len().div_ceil(chunk),
        chunk_size: chunk,
        ..ParStats::default()
    };

    if threads == 1 {
        // One batch scratch reused across every source of the sweep — the
        // serial arm is simply the batched kernel over the whole list.
        let mut scratch = SptBatchScratch::new(csr.node_count());
        let trees = csr.full_tree_batch(sources, mask, &mut scratch);
        stats.chunk_claims.push(stats.chunks as u64);
        stats.settled.push(scratch.settled_total());
        stats.scratch_runs.push(scratch.runs());
        stats.heap_pushes.push(scratch.heap_pushes());
        stats.heap_pops.push(scratch.heap_pops());
        stats.decrease_keys.push(scratch.decrease_keys());
        return (trees, stats);
    }

    let mut out: Vec<Option<ShortestPathTree>> = Vec::new();
    out.resize_with(sources.len(), || None);
    {
        // Pre-slice the output per chunk. Each Mutex is locked exactly
        // once, by the thread whose fetch_add claimed that index.
        type Job<'a> = (&'a mut [Option<ShortestPathTree>], &'a [NodeId]);
        let jobs: Vec<Mutex<Option<Job<'_>>>> = out
            .chunks_mut(chunk)
            .zip(sources.chunks(chunk))
            .map(|job| Mutex::new(Some(job)))
            .collect();
        let next = AtomicUsize::new(0);

        thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        // One batch scratch per worker, reused across every
                        // chunk this thread steals.
                        let mut scratch = SptBatchScratch::new(csr.node_count());
                        let mut claims = 0u64;
                        // lint:hot: the worker steal loop of the sweep.
                        loop {
                            // lint:allow(atomics-order) — pure ticket counter; the per-job Mutex is the hand-off that orders the data
                            let j = next.fetch_add(1, Ordering::Relaxed);
                            if j >= jobs.len() {
                                break;
                            }
                            claims += 1;
                            let job = jobs[j]
                                .lock()
                                .unwrap_or_else(|poison| poison.into_inner())
                                .take();
                            let Some((slots, srcs)) = job else { continue };
                            csr.full_tree_batch_with(srcs, mask, &mut scratch, |i, tree| {
                                slots[i] = Some(tree);
                            });
                        }
                        (claims, scratch)
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok((claims, scratch)) => {
                        stats.chunk_claims.push(claims);
                        stats.scratch_runs.push(scratch.runs());
                        stats.settled.push(scratch.settled_total());
                        stats.heap_pushes.push(scratch.heap_pushes());
                        stats.heap_pops.push(scratch.heap_pops());
                        stats.decrease_keys.push(scratch.decrease_keys());
                    }
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
    }
    let trees = out
        .into_iter()
        .map(|slot| slot.expect("invariant: every chunk is claimed exactly once"))
        .collect();
    (trees, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{shortest_path_tree, DetRng, FailureSet, Metric};

    fn random_graph(n: usize, m: usize, seed: u64) -> Graph {
        let mut g = Graph::new(n);
        let mut rng = DetRng::seed_from_u64(seed);
        while g.edge_count() < m {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                g.add_edge(a, b, rng.gen_range(1..=20u32)).unwrap();
            }
        }
        g
    }

    #[test]
    fn matches_sequential_across_thread_counts() {
        // 60 nodes is far below PAR_SERIAL_CUTOFF: every requested
        // thread count must collapse to the inline path and still match.
        let g = random_graph(60, 150, 2);
        let model = CostModel::new(Metric::Weighted, 7);
        let sources: Vec<NodeId> = g.nodes().collect();
        let want: Vec<ShortestPathTree> = sources
            .iter()
            .map(|&s| shortest_path_tree(&g, &model, s))
            .collect();
        for threads in [1usize, 2, 3, 8] {
            let (got, stats) = par_all_sources(&g, &model, &sources, threads);
            assert_eq!(got, want, "threads = {threads}");
            assert_eq!(stats.threads, 1, "below the cutoff the run is inline");
            assert_eq!(stats.total_chunks_claimed(), stats.chunks as u64);
            assert_eq!(stats.scratch_runs.iter().sum::<u64>(), 60);
            assert!(stats.total_settled() > 0);
            assert_eq!(
                stats.total_heap_pops(),
                stats.total_settled(),
                "decrease-key pops exactly once per settle"
            );
            assert_eq!(stats.total_heap_pushes(), stats.total_settled());
            assert!(stats.total_decrease_keys() > 0);
        }
    }

    #[test]
    fn heap_stats_cover_every_thread() {
        let g = random_graph(PAR_SERIAL_CUTOFF, 3 * PAR_SERIAL_CUTOFF, 6);
        let model = CostModel::new(Metric::Weighted, 5);
        let sources: Vec<NodeId> = (0..24).map(|i| NodeId::new(i * 40)).collect();
        let (_, stats) = par_all_sources(&g, &model, &sources, 2);
        assert_eq!(stats.heap_pushes.len(), stats.threads);
        assert_eq!(stats.heap_pops.len(), stats.threads);
        assert_eq!(stats.decrease_keys.len(), stats.threads);
        assert_eq!(stats.total_heap_pops(), stats.total_settled());
    }

    #[test]
    fn above_cutoff_spawns_requested_threads() {
        let g = random_graph(PAR_SERIAL_CUTOFF, 3 * PAR_SERIAL_CUTOFF, 4);
        let model = CostModel::new(Metric::Weighted, 11);
        // A subset of sources keeps the test quick; the cutoff keys on
        // node count, not batch length.
        let sources: Vec<NodeId> = (0..16).map(|i| NodeId::new(i * 60)).collect();
        let want: Vec<ShortestPathTree> = sources
            .iter()
            .map(|&s| shortest_path_tree(&g, &model, s))
            .collect();
        for threads in [1usize, 2] {
            let (got, stats) = par_all_sources(&g, &model, &sources, threads);
            assert_eq!(got, want, "threads = {threads}");
            assert_eq!(stats.threads, threads);
        }
    }

    #[test]
    fn masked_batch_matches_sequential_view() {
        let g = random_graph(40, 90, 5);
        let model = CostModel::new(Metric::Unweighted, 13);
        let mut set = FailureSet::new();
        set.fail_edge(crate::EdgeId::new(0));
        set.fail_edge(crate::EdgeId::new(17));
        set.fail_node(NodeId::new(3));
        let view = set.view(&g);
        let sources: Vec<NodeId> = g.nodes().collect();
        let want: Vec<ShortestPathTree> = sources
            .iter()
            .map(|&s| shortest_path_tree(&view, &model, s))
            .collect();
        let csr = CsrGraph::new(&g, &model);
        let mask = FailureMask::from_set(&csr, &set);
        for threads in [1usize, 4] {
            let (got, _) = par_all_sources_csr(&csr, Some(&mask), &sources, threads);
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_subset_sources() {
        let g = random_graph(10, 20, 1);
        let model = CostModel::new(Metric::Weighted, 1);
        let (trees, stats) = par_all_sources(&g, &model, &[], 4);
        assert!(trees.is_empty());
        assert_eq!(stats.chunks, 0);
        let subset = [NodeId::new(3), NodeId::new(7), NodeId::new(3)];
        let (trees, _) = par_all_sources(&g, &model, &subset, 2);
        assert_eq!(trees.len(), 3);
        assert_eq!(trees[0], trees[2]);
        assert_eq!(trees[1].source(), NodeId::new(7));
    }

    #[test]
    fn zero_threads_is_one() {
        let g = random_graph(12, 25, 9);
        let model = CostModel::new(Metric::Weighted, 3);
        let sources: Vec<NodeId> = g.nodes().collect();
        let (a, stats) = par_all_sources(&g, &model, &sources, 0);
        let (b, _) = par_all_sources(&g, &model, &sources, 1);
        assert_eq!(a, b);
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.total_scratch_reuses(), 11);
    }

    #[test]
    fn chunk_size_is_deterministic() {
        assert_eq!(chunk_size_for(0, 4), 1);
        assert_eq!(chunk_size_for(100, 4), 7);
        assert_eq!(chunk_size_for(100, 1), 25);
        assert_eq!(chunk_size_for(3, 8), 1);
    }
}
