//! Breadth-first search and connectivity.

use crate::{NodeId, Topology};
use std::collections::VecDeque;

/// Hop distances from `source` over `topo` (ignoring weights).
///
/// `None` marks unreachable nodes (including everything when the source is
/// failed).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_distances<T: Topology>(topo: &T, source: NodeId) -> Vec<Option<u32>> {
    let n = topo.graph().node_count();
    assert!(source.index() < n, "source {source} out of range");
    let mut dist = vec![None; n];
    if !topo.node_alive(source) {
        return dist;
    }
    dist[source.index()] = Some(0);
    let mut q = VecDeque::new();
    q.push_back(source);
    while let Some(u) = q.pop_front() {
        let du = dist[u.index()].expect("invariant: queued nodes have distances");
        for h in topo.live_neighbors(u) {
            if dist[h.to.index()].is_none() {
                dist[h.to.index()] = Some(du + 1);
                q.push_back(h.to);
            }
        }
    }
    dist
}

/// Connected-component labelling of a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLabels {
    /// Component index per node; `None` for failed nodes.
    pub label: Vec<Option<u32>>,
    /// Number of components among live nodes.
    pub count: usize,
}

impl ComponentLabels {
    /// Whether `a` and `b` are live and in the same component.
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        match (self.label[a.index()], self.label[b.index()]) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }
}

/// Labels the connected components of the live part of `topo`.
pub fn connected_components<T: Topology>(topo: &T) -> ComponentLabels {
    let n = topo.graph().node_count();
    let mut label = vec![None; n];
    let mut count = 0usize;
    let mut q = VecDeque::new();
    for s in 0..n {
        let s = NodeId::new(s);
        if label[s.index()].is_some() || !topo.node_alive(s) {
            continue;
        }
        let c = count as u32;
        count += 1;
        label[s.index()] = Some(c);
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for h in topo.live_neighbors(u) {
                if label[h.to.index()].is_none() {
                    label[h.to.index()] = Some(c);
                    q.push_back(h.to);
                }
            }
        }
    }
    ComponentLabels { label, count }
}

/// Whether all live nodes of `topo` are mutually reachable.
///
/// A topology with zero live nodes is considered connected.
pub fn is_connected<T: Topology>(topo: &T) -> bool {
    connected_components(topo).count <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeId, FailureSet, Graph};

    fn two_triangles() -> Graph {
        let mut g = Graph::new(6);
        for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_edge(a, b, 1).unwrap();
        }
        g
    }

    #[test]
    fn bfs_hop_counts() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 100).unwrap(); // weight ignored by BFS
        g.add_edge(1, 2, 1).unwrap();
        g.add_edge(2, 3, 1).unwrap();
        let d = bfs_distances(&g, 0.into());
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bfs_unreachable_and_dead_source() {
        let g = two_triangles();
        let d = bfs_distances(&g, 0.into());
        assert_eq!(d[3], None);
        let f = FailureSet::of_nodes([0usize]);
        let d2 = bfs_distances(&f.view(&g), 0.into());
        assert!(d2.iter().all(Option::is_none));
    }

    #[test]
    fn components_of_disjoint_triangles() {
        let g = two_triangles();
        let c = connected_components(&g);
        assert_eq!(c.count, 2);
        assert!(c.same_component(0.into(), 2.into()));
        assert!(!c.same_component(0.into(), 3.into()));
        assert!(!is_connected(&g));
    }

    #[test]
    fn bridging_edge_connects() {
        let mut g = two_triangles();
        g.add_edge(2, 3, 1).unwrap();
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).count, 1);
    }

    #[test]
    fn failure_splits_component() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1).unwrap();
        let bridge = g.add_edge(1, 2, 1).unwrap();
        assert!(is_connected(&g));
        let f = FailureSet::of_edge(bridge);
        let v = f.view(&g);
        assert!(!is_connected(&v));
        assert_eq!(connected_components(&v).count, 2);
    }

    #[test]
    fn failed_nodes_have_no_label() {
        let g = two_triangles();
        let f = FailureSet::of_nodes([1usize]);
        let v = f.view(&g);
        let c = connected_components(&v);
        assert_eq!(c.label[1], None);
        // 0 and 2 remain connected through... nothing: triangle loses its
        // middle, but 0-2 edge survives.
        assert!(c.same_component(0.into(), 2.into()));
        assert!(!c.same_component(0.into(), 1.into()));
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = Graph::new(0);
        assert!(is_connected(&g));
        let _ = EdgeId::new(0); // silence unused import on some cfgs
    }
}
