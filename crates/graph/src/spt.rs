//! Shortest-path trees.

use crate::{EdgeId, Graph, NodeId, Path, PathCost};

pub(crate) const NO_EDGE: u32 = u32::MAX;
pub(crate) const NO_NODE: u32 = u32::MAX;

/// A single-source shortest-path tree over some topology, produced by
/// [`shortest_path_tree`](crate::shortest_path_tree).
///
/// Stores, per node: the perturbed distance (unique tie-breaking), the
/// original-metric distance, the hop count, and the tree parent. Because
/// perturbed costs make shortest paths unique (see
/// [`CostModel`](crate::CostModel)), tree paths are canonical: *the* base
/// path of the RBPC scheme from this source to every node.
///
/// ```
/// use rbpc_graph::{CostModel, Graph, Metric, shortest_path_tree};
/// # fn main() -> Result<(), rbpc_graph::GraphError> {
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 2)?;
/// g.add_edge(1, 2, 2)?;
/// g.add_edge(0, 2, 10)?;
/// let spt = shortest_path_tree(&g, &CostModel::new(Metric::Weighted, 0), 0.into());
/// assert_eq!(spt.base_dist(2.into()), Some(4));
/// assert_eq!(spt.path_to(2.into()).unwrap().hop_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortestPathTree {
    source: NodeId,
    pub(crate) dist: Vec<u128>,
    pub(crate) base_dist: Vec<u64>,
    pub(crate) hops: Vec<u32>,
    pub(crate) parent_edge: Vec<u32>,
    pub(crate) parent_node: Vec<u32>,
}

impl ShortestPathTree {
    /// Creates an all-unreachable tree skeleton (crate-internal).
    pub(crate) fn unreachable(source: NodeId, n: usize) -> Self {
        ShortestPathTree {
            source,
            dist: vec![u128::MAX; n],
            base_dist: vec![u64::MAX; n],
            hops: vec![u32::MAX; n],
            parent_edge: vec![NO_EDGE; n],
            parent_node: vec![NO_NODE; n],
        }
    }

    /// Assembles a tree from prefilled per-node arrays (crate-internal;
    /// the CSR engine harvests its scratch arena in one sequential pass
    /// instead of settling nodes one at a time).
    pub(crate) fn from_arrays(
        source: NodeId,
        dist: Vec<u128>,
        base_dist: Vec<u64>,
        hops: Vec<u32>,
        parent_edge: Vec<u32>,
        parent_node: Vec<u32>,
    ) -> Self {
        let tree = ShortestPathTree {
            source,
            dist,
            base_dist,
            hops,
            parent_edge,
            parent_node,
        };
        debug_assert_eq!(tree.validate_structure(), Ok(()));
        tree
    }

    pub(crate) fn settle(
        &mut self,
        v: NodeId,
        dist: u128,
        base: u64,
        hops: u32,
        parent: Option<(NodeId, EdgeId)>,
    ) {
        let i = v.index();
        self.dist[i] = dist;
        self.base_dist[i] = base;
        self.hops[i] = hops;
        match parent {
            Some((pn, pe)) => {
                self.parent_node[i] = pn.index() as u32;
                self.parent_edge[i] = pe.index() as u32;
            }
            None => {
                self.parent_node[i] = NO_NODE;
                self.parent_edge[i] = NO_EDGE;
            }
        }
    }

    /// Resets `v` to the unreachable sentinel state (crate-internal; used
    /// by the [`dynamic`](crate::dynamic) repair engine to detach a
    /// subtree before re-attaching it).
    pub(crate) fn clear_node(&mut self, i: usize) {
        self.dist[i] = u128::MAX;
        self.base_dist[i] = u64::MAX;
        self.hops[i] = u32::MAX;
        self.parent_edge[i] = NO_EDGE;
        self.parent_node[i] = NO_NODE;
    }

    /// The tree's source node.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Number of nodes the tree was computed over.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.dist.len()
    }

    /// Whether `v` is reachable from the source.
    #[inline]
    pub fn reachable(&self, v: NodeId) -> bool {
        self.dist[v.index()] != u128::MAX
    }

    /// Perturbed (tie-broken) distance to `v`, or `None` if unreachable.
    #[inline]
    pub fn perturbed_dist(&self, v: NodeId) -> Option<u128> {
        match self.dist[v.index()] {
            u128::MAX => None,
            d => Some(d),
        }
    }

    /// Original-metric distance to `v`, or `None` if unreachable.
    #[inline]
    pub fn base_dist(&self, v: NodeId) -> Option<u64> {
        match self.base_dist[v.index()] {
            u64::MAX => None,
            d => Some(d),
        }
    }

    /// Hop count of the tree path to `v`, or `None` if unreachable.
    #[inline]
    pub fn hops(&self, v: NodeId) -> Option<u32> {
        match self.hops[v.index()] {
            u32::MAX => None,
            h => Some(h),
        }
    }

    /// Full [`PathCost`] of the tree path to `v`, or `None` if unreachable.
    pub fn cost_to(&self, v: NodeId) -> Option<PathCost> {
        Some(PathCost {
            base: self.base_dist(v)?,
            perturbed: self.perturbed_dist(v)?,
            hops: self.hops(v)?,
        })
    }

    /// The tree edge entering `v`, or `None` for the source / unreachable
    /// nodes.
    #[inline]
    pub fn parent_edge(&self, v: NodeId) -> Option<EdgeId> {
        match self.parent_edge[v.index()] {
            NO_EDGE => None,
            e => Some(EdgeId::new(e as usize)),
        }
    }

    /// The tree parent of `v`, or `None` for the source / unreachable nodes.
    #[inline]
    pub fn parent_node(&self, v: NodeId) -> Option<NodeId> {
        match self.parent_node[v.index()] {
            NO_NODE => None,
            n => Some(NodeId::new(n as usize)),
        }
    }

    /// Checks whether edge `pe` into node `v` from `pu` is the tree edge of
    /// `v` — i.e. whether extending the tree path of `pu` by `pe` yields the
    /// canonical shortest path to `v`. This is the O(1) primitive behind
    /// greedy longest-prefix decomposition.
    #[inline]
    pub fn is_tree_step(&self, pu: NodeId, pe: EdgeId, v: NodeId) -> bool {
        self.parent_node[v.index()] == pu.index() as u32
            && self.parent_edge[v.index()] == pe.index() as u32
    }

    /// Materializes the tree path from the source to `v`.
    ///
    /// Returns `None` if `v` is unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Path> {
        if !self.reachable(v) {
            return None;
        }
        let mut nodes = vec![v];
        let mut edges = Vec::new();
        let mut at = v;
        while let Some(pe) = self.parent_edge(at) {
            let pn = self
                .parent_node(at)
                .expect("invariant: parent edge implies parent node");
            edges.push(pe);
            nodes.push(pn);
            at = pn;
        }
        debug_assert_eq!(at, self.source);
        nodes.reverse();
        edges.reverse();
        Some(Path::from_parts_unchecked(nodes, edges))
    }

    /// Enumerates, for every node, its tree children. Useful for computing
    /// which destinations route through a given edge.
    ///
    /// Allocates one `Vec` per node; batch callers should prefer the flat
    /// [`children_flat`](Self::children_flat) form, which allocates twice
    /// regardless of `n`.
    pub fn children(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.dist.len()];
        for i in 0..self.dist.len() {
            if self.parent_node[i] != NO_NODE {
                out[self.parent_node[i] as usize].push(NodeId::new(i));
            }
        }
        out
    }

    /// Fills `offsets`/`kids` with the CSR form of the children relation
    /// (counts → prefix sums → fill), reusing `cursor` as working memory.
    /// All three buffers are cleared first, so scratch reuse is safe.
    pub(crate) fn fill_children_csr(
        &self,
        offsets: &mut Vec<u32>,
        kids: &mut Vec<u32>,
        cursor: &mut Vec<u32>,
    ) {
        let n = self.dist.len();
        offsets.clear();
        offsets.resize(n + 1, 0);
        for i in 0..n {
            let p = self.parent_node[i];
            if p != NO_NODE {
                offsets[p as usize + 1] += 1;
            }
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        kids.clear();
        kids.resize(offsets[n] as usize, 0);
        cursor.clear();
        cursor.extend_from_slice(&offsets[..n]);
        for i in 0..n {
            let p = self.parent_node[i];
            if p != NO_NODE {
                kids[cursor[p as usize] as usize] = i as u32;
                cursor[p as usize] += 1;
            }
        }
    }

    /// The children relation in flat CSR form: two allocations total
    /// (offsets + one id array) instead of the `Vec`-per-node layout of
    /// [`children`](Self::children). Preferred for batch traversals such
    /// as subtree walks and the [`dynamic`](crate::dynamic) repair engine.
    pub fn children_flat(&self) -> FlatChildren {
        let mut offsets = Vec::new();
        let mut kids = Vec::new();
        let mut cursor = Vec::new();
        self.fill_children_csr(&mut offsets, &mut kids, &mut cursor);
        FlatChildren { offsets, kids }
    }

    /// All nodes whose tree path traverses the tree edge entering `below`
    /// (i.e. the subtree rooted at `below`). Linear in subtree size after a
    /// `children_flat()` precomputation, or linear in `n` standalone.
    pub fn subtree(&self, below: NodeId) -> Vec<NodeId> {
        if !self.reachable(below) {
            return Vec::new();
        }
        let children = self.children_flat();
        let mut stack = vec![below];
        let mut out = Vec::new();
        while let Some(v) = stack.pop() {
            out.push(v);
            stack.extend(children.of(v));
        }
        out
    }

    /// Structural self-check: array lengths agree, the reachable/sentinel
    /// state of every node is all-or-nothing across the five arrays, the
    /// source is the unique root, and every parent link is consistent
    /// (hops grow by exactly one, perturbed distance strictly increases —
    /// which also proves the parent relation is acyclic).
    ///
    /// Graph-free (no weights available here): edge-level consistency and
    /// the uniqueness-under-perturbation property are checked by
    /// [`CsrGraph::validate_tree`](crate::csr::CsrGraph::validate_tree).
    /// O(n); intended for `debug_assert!` and the validation harnesses.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate_structure(&self) -> Result<(), String> {
        let n = self.dist.len();
        for (name, len) in [
            ("base_dist", self.base_dist.len()),
            ("hops", self.hops.len()),
            ("parent_edge", self.parent_edge.len()),
            ("parent_node", self.parent_node.len()),
        ] {
            if len != n {
                return Err(format!("{name} has length {len}, dist has {n}"));
            }
        }
        let si = self.source.index();
        if si >= n {
            return Err(format!("source {} out of range for {n} nodes", self.source));
        }
        if self.dist[si] == u128::MAX {
            // The all-unreachable skeleton (failed source): nothing may be
            // reachable, and the per-node sentinel check below finishes.
            if let Some(v) = (0..n).find(|&v| self.dist[v] != u128::MAX) {
                return Err(format!(
                    "source {} is unreachable but node {v} is reachable",
                    self.source
                ));
            }
        } else if self.dist[si] != 0
            || self.base_dist[si] != 0
            || self.hops[si] != 0
            || self.parent_edge[si] != NO_EDGE
            || self.parent_node[si] != NO_NODE
        {
            return Err(format!(
                "source {} must have zero distances and no parent",
                self.source
            ));
        }
        for v in 0..n {
            let reached = self.dist[v] != u128::MAX;
            let sentinels = [
                self.base_dist[v] == u64::MAX,
                self.hops[v] == u32::MAX,
                self.parent_edge[v] == NO_EDGE && self.parent_node[v] == NO_NODE,
            ];
            if !reached {
                if sentinels.iter().any(|&s| !s) {
                    return Err(format!("unreachable node {v} has non-sentinel fields"));
                }
                continue;
            }
            if v == si {
                continue;
            }
            let (pe, pn) = (self.parent_edge[v], self.parent_node[v]);
            if pe == NO_EDGE || pn == NO_NODE {
                return Err(format!("reachable non-source node {v} has no parent"));
            }
            let p = pn as usize;
            if p >= n {
                return Err(format!("node {v} has out-of-range parent {p}"));
            }
            if self.dist[p] == u128::MAX {
                return Err(format!("node {v}'s parent {p} is unreachable"));
            }
            if self.hops[v] != self.hops[p].wrapping_add(1) {
                return Err(format!(
                    "node {v} has {} hops but parent {p} has {}",
                    self.hops[v], self.hops[p]
                ));
            }
            if self.dist[v] <= self.dist[p] {
                return Err(format!(
                    "node {v}'s perturbed distance does not exceed its parent {p}'s"
                ));
            }
            if self.base_dist[v] < self.base_dist[p] {
                return Err(format!(
                    "node {v}'s base distance is below its parent {p}'s"
                ));
            }
        }
        Ok(())
    }

    /// Memory-relevant size in bytes (for cache budgeting).
    pub fn approx_bytes(&self) -> usize {
        self.dist.len() * (16 + 8 + 4 + 4 + 4)
    }

    /// Reference to the raw graph this tree indexes into is not stored;
    /// validate compatibility by node count.
    pub fn compatible_with(&self, graph: &Graph) -> bool {
        graph.node_count() == self.dist.len()
    }
}

/// The children relation of a [`ShortestPathTree`] in compressed-sparse-row
/// form: `offsets[v] .. offsets[v + 1]` indexes the children of node `v` in
/// one flat id array. Produced by
/// [`ShortestPathTree::children_flat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatChildren {
    offsets: Vec<u32>,
    kids: Vec<u32>,
}

impl FlatChildren {
    /// The tree children of `v`, as a borrowed slice of raw node indices
    /// converted on iteration; see [`FlatChildren::of`] for typed access.
    #[inline]
    fn raw_of(&self, v: NodeId) -> &[u32] {
        let i = v.index();
        &self.kids[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The tree children of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn of(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.raw_of(v).iter().map(|&i| NodeId::new(i as usize))
    }

    /// Number of children of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn count_of(&self, v: NodeId) -> usize {
        self.raw_of(v).len()
    }

    /// Number of nodes the relation covers.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of parent→child tree edges.
    #[inline]
    pub fn total(&self) -> usize {
        self.kids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{shortest_path_tree, CostModel, Metric};

    fn line(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, (i + 1) as u32).unwrap();
        }
        g
    }

    fn spt(g: &Graph, s: usize) -> ShortestPathTree {
        shortest_path_tree(g, &CostModel::new(Metric::Weighted, 11), s.into())
    }

    #[test]
    fn line_distances() {
        let g = line(4); // weights 1, 2, 3
        let t = spt(&g, 0);
        assert_eq!(t.base_dist(0.into()), Some(0));
        assert_eq!(t.base_dist(1.into()), Some(1));
        assert_eq!(t.base_dist(2.into()), Some(3));
        assert_eq!(t.base_dist(3.into()), Some(6));
        assert_eq!(t.hops(3.into()), Some(3));
        assert_eq!(t.source(), 0.into());
        assert_eq!(t.node_count(), 4);
    }

    #[test]
    fn unreachable_node() {
        let mut g = line(3);
        let iso = g.add_node();
        let t = spt(&g, 0);
        assert!(!t.reachable(iso));
        assert_eq!(t.base_dist(iso), None);
        assert_eq!(t.perturbed_dist(iso), None);
        assert_eq!(t.hops(iso), None);
        assert_eq!(t.path_to(iso), None);
        assert_eq!(t.cost_to(iso), None);
    }

    #[test]
    fn path_reconstruction() {
        let g = line(4);
        let t = spt(&g, 0);
        let p = t.path_to(3.into()).unwrap();
        assert_eq!(p.source(), 0.into());
        assert_eq!(p.target(), 3.into());
        assert_eq!(p.hop_count(), 3);
        assert_eq!(
            p.nodes(),
            &[0usize.into(), 1usize.into(), 2usize.into(), 3usize.into()] as &[NodeId]
        );
        let src = t.path_to(0.into()).unwrap();
        assert!(src.is_trivial());
    }

    #[test]
    fn parents_and_tree_steps() {
        let g = line(3);
        let t = spt(&g, 0);
        assert_eq!(t.parent_node(0.into()), None);
        assert_eq!(t.parent_edge(0.into()), None);
        assert_eq!(t.parent_node(2.into()), Some(1.into()));
        let e = t.parent_edge(2.into()).unwrap();
        assert!(t.is_tree_step(1.into(), e, 2.into()));
        assert!(!t.is_tree_step(0.into(), e, 2.into()));
    }

    #[test]
    fn children_and_subtree() {
        let g = line(4);
        let t = spt(&g, 0);
        let kids = t.children();
        assert_eq!(kids[0], vec![NodeId::new(1)]);
        assert_eq!(kids[3], Vec::<NodeId>::new());
        let mut sub = t.subtree(1.into());
        sub.sort();
        assert_eq!(sub, vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
        let mut g2 = line(2);
        let iso = g2.add_node();
        let t2 = spt(&g2, 0);
        assert!(t2.subtree(iso).is_empty());
    }

    #[test]
    fn children_flat_matches_children() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(0, 2, 1).unwrap();
        g.add_edge(1, 3, 1).unwrap();
        g.add_edge(1, 4, 1).unwrap();
        let _iso = g.add_node(); // node 6: isolated
        let t = spt(&g, 0);
        let nested = t.children();
        let flat = t.children_flat();
        assert_eq!(flat.node_count(), g.node_count());
        assert_eq!(flat.total(), nested.iter().map(Vec::len).sum::<usize>());
        for v in g.nodes() {
            let got: Vec<NodeId> = flat.of(v).collect();
            assert_eq!(got, nested[v.index()], "children of {v}");
            assert_eq!(flat.count_of(v), nested[v.index()].len());
        }
    }

    #[test]
    fn cost_to_combines_fields() {
        let g = line(3);
        let t = spt(&g, 0);
        let c = t.cost_to(2.into()).unwrap();
        assert_eq!(c.base, 3);
        assert_eq!(c.hops, 2);
        assert_eq!(Some(c.perturbed), t.perturbed_dist(2.into()));
    }

    #[test]
    fn compatibility_and_size() {
        let g = line(3);
        let t = spt(&g, 0);
        assert!(t.compatible_with(&g));
        assert!(!t.compatible_with(&line(4)));
        assert!(t.approx_bytes() >= 3 * 32);
    }
}
