//! Incremental maintenance of [`ShortestPathTree`]s under edge failures
//! and recoveries, in the style of Ramalingam–Reps.
//!
//! A full Dijkstra over a failed view costs `O((n + m) log n)` even when a
//! failure detaches only a handful of nodes. This module updates an
//! existing tree in place instead:
//!
//! * **Failure** ([`repair_after_failures`]): only nodes whose tree path
//!   used a failed edge can change (edge deletions never shorten paths).
//!   The affected subtrees are detached, re-seeded from their best live
//!   neighbors outside the region, and re-settled by a Dijkstra restricted
//!   to the region.
//! * **Recovery** ([`repair_after_recoveries`]): a returning edge can only
//!   shorten paths, so a decrease-only relaxation wave from its endpoints
//!   suffices; nodes it never improves keep their entries verbatim.
//!
//! Because the padded [`CostModel`] makes shortest paths unique (distinct
//! perturbed costs ⇒ a unique optimum per node — see the crate-level
//! discussion of infinitesimal padding), a repaired tree is **bit-identical**
//! to the tree a full rebuild over the same view would produce: same
//! distances, same parents, same canonical base paths. This is the same
//! invariant Bodwin–Parter call *restorable tiebreaking* — canonical
//! shortest paths that survive edge deletions. The equivalence is enforced
//! by this module's tests and by the `spt_repair` property suite.
//!
//! # Caller contract
//!
//! The `topo` passed to a repair call must be the **post-event** view: each
//! failed edge already dead, each recovered edge already alive. A failure
//! of the tree's source node itself cannot be expressed as a repair (the
//! rebuilt tree is all-unreachable, including the source slot); callers
//! must fall back to a rebuild for that case, as
//! `rbpc_core`'s base-path oracles do. Node failures elsewhere are handled
//! by repairing with the node's incident-edge set: the dead node never
//! re-attaches because the view masks all of its edges.
//!
//! ```
//! use rbpc_graph::{
//!     repair_after_failure, shortest_path_tree, CostModel, FailureSet, Graph, Metric,
//! };
//! # fn main() -> Result<(), rbpc_graph::GraphError> {
//! let mut g = Graph::new(4);
//! let ab = g.add_edge(0, 1, 1)?;
//! g.add_edge(1, 2, 1)?;
//! g.add_edge(0, 3, 1)?;
//! g.add_edge(3, 2, 1)?;
//! let model = CostModel::new(Metric::Weighted, 7);
//!
//! let mut tree = shortest_path_tree(&g, &model, 0.into());
//! let failures = FailureSet::of_edge(ab);
//! let view = failures.view(&g);
//! let stats = repair_after_failure(&mut tree, &view, &model, ab);
//! assert_eq!(tree, shortest_path_tree(&view, &model, 0.into()));
//! assert!(stats.nodes_touched <= g.node_count());
//! # Ok(())
//! # }
//! ```
//!
//! See `docs/PAPER_MAP.md` (repository root) for the full map from the
//! paper's results to modules and tests.

use crate::{
    shortest_path_tree, CostModel, EdgeId, FailureSet, Graph, NodeId, ShortestPathTree, Topology,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What one incremental repair did to the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairStats {
    /// Nodes whose tree entry was recomputed: the detached-subtree size for
    /// a failure, the number of improved nodes for a recovery. Zero means
    /// the event did not intersect the tree at all.
    pub nodes_touched: usize,
}

/// Reusable working memory for the repair engine: the children-CSR
/// buffers, epoch-stamped affected/settled marks, and the priority queue.
///
/// A churn stream repairs the same tree thousands of times; with a scratch
/// the per-event cost drops from six O(n) allocations to an epoch bump
/// (the children CSR is still refilled — it depends on the current tree —
/// but into retained capacity). [`DynamicSpt`] owns one internally; the
/// free-standing [`repair_after_failures_with`] /
/// [`repair_after_recoveries_with`] take one explicitly.
#[derive(Debug, Clone, Default)]
pub struct RepairScratch {
    epoch: u32,
    /// `affected[v] == epoch` ⇔ `v` is in the detached region this run
    /// (failures) or already counted as improved (recoveries).
    affected: Vec<u32>,
    /// `settled[v] == epoch` ⇔ `v` was settled by this run's Dijkstra.
    settled: Vec<u32>,
    offsets: Vec<u32>,
    kids: Vec<u32>,
    cursor: Vec<u32>,
    affected_list: Vec<u32>,
    heap: BinaryHeap<(Reverse<u128>, u32)>,
    runs: u64,
}

impl RepairScratch {
    /// An empty scratch; buffers grow to fit on first use.
    pub fn new() -> Self {
        RepairScratch::default()
    }

    /// Prepares for a repair over an `n`-node graph.
    fn begin(&mut self, n: usize) {
        if self.affected.len() < n {
            self.affected.resize(n, 0);
            self.settled.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.affected.iter_mut().for_each(|s| *s = 0);
            self.settled.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.heap.clear();
        self.affected_list.clear();
        self.runs += 1;
    }

    /// Number of repairs served (reuses = `runs() - 1`).
    #[inline]
    pub fn runs(&self) -> u64 {
        self.runs
    }
}

/// Runs `f` with this thread's shared [`RepairScratch`], so the
/// convenience wrappers ([`repair_after_failures`],
/// [`repair_after_recoveries`]) get arena reuse for free instead of
/// paying a fresh allocation + zero-fill on every call. The epoch stamps
/// make reuse across unrelated trees and graph sizes exact.
fn with_thread_scratch<R>(f: impl FnOnce(&mut RepairScratch) -> R) -> R {
    thread_local! {
        static SCRATCH: std::cell::RefCell<RepairScratch> =
            std::cell::RefCell::new(RepairScratch::new());
    }
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        // Re-entrant call (e.g. from a destructor mid-repair): fall back
        // to a fresh arena rather than panicking.
        Err(_) => f(&mut RepairScratch::new()),
    })
}

/// Repairs `tree` in place after a single edge failure.
///
/// Equivalent to [`repair_after_failures`] with a one-element slice; see
/// the [module docs](self) for the caller contract.
pub fn repair_after_failure<T: Topology>(
    tree: &mut ShortestPathTree,
    topo: &T,
    model: &CostModel,
    failed: EdgeId,
) -> RepairStats {
    repair_after_failures(tree, topo, model, &[failed])
}

/// Repairs `tree` in place after a batch of edge failures, touching only
/// the subtrees hanging below the failed tree edges.
///
/// `topo` must be the post-failure view (every edge in `failed` dead) and
/// the tree's source must still be alive; see the [module docs](self).
/// Failing edges that were never tree edges is a no-op, because deleting a
/// non-tree edge can neither shorten any path nor invalidate a tree path.
///
/// Returns the number of nodes in the detached (recomputed) region.
pub fn repair_after_failures<T: Topology>(
    tree: &mut ShortestPathTree,
    topo: &T,
    model: &CostModel,
    failed: &[EdgeId],
) -> RepairStats {
    with_thread_scratch(|scratch| repair_after_failures_with(tree, topo, model, failed, scratch))
}

/// [`repair_after_failures`] with caller-provided working memory, for
/// churn streams that repair the same tree repeatedly.
pub fn repair_after_failures_with<T: Topology>(
    tree: &mut ShortestPathTree,
    topo: &T,
    model: &CostModel,
    failed: &[EdgeId],
    scratch: &mut RepairScratch,
) -> RepairStats {
    let graph = topo.graph();
    let n = graph.node_count();
    debug_assert!(tree.compatible_with(graph), "tree/graph size mismatch");
    debug_assert!(
        topo.node_alive(tree.source()),
        "source failure requires a full rebuild, not a repair"
    );

    // Roots of the detached region: tree edges are directed parent→child in
    // `parent_edge`, so only a failed edge's endpoints can root a subtree.
    let mut roots: Vec<u32> = Vec::new();
    for &e in failed {
        debug_assert!(
            !topo.edge_alive(e),
            "`topo` must be the post-failure view (edge {e} still alive)"
        );
        let (u, v) = graph.endpoints(e);
        for x in [u, v] {
            if tree.parent_edge[x.index()] == e.index() as u32 {
                roots.push(x.index() as u32);
            }
        }
    }
    if roots.is_empty() {
        return RepairStats::default();
    }

    scratch.begin(n);
    let epoch = scratch.epoch;

    // Children as a CSR (counts → offsets → fill): O(n), flat buffers
    // retained across repairs, no Vec-per-node.
    tree.fill_children_csr(&mut scratch.offsets, &mut scratch.kids, &mut scratch.cursor);

    // Collect the affected subtrees; the `affected` stamps deduplicate
    // roots nested inside other roots' subtrees.
    let mut stack = roots;
    while let Some(v) = stack.pop() {
        let vi = v as usize;
        if scratch.affected[vi] == epoch {
            continue;
        }
        scratch.affected[vi] = epoch;
        scratch.affected_list.push(v);
        stack.extend_from_slice(
            &scratch.kids[scratch.offsets[vi] as usize..scratch.offsets[vi + 1] as usize],
        );
    }

    // Detach the region, then seed every affected node with its best entry
    // point from the unaffected remainder (whose distances are final:
    // deletions only lengthen paths).
    for &v in &scratch.affected_list {
        tree.clear_node(v as usize);
    }
    for &ai in &scratch.affected_list {
        let a = NodeId::new(ai as usize);
        for h in topo.live_neighbors(a) {
            let bi = h.to.index();
            if scratch.affected[bi] == epoch || tree.dist[bi] == u128::MAX {
                continue;
            }
            let nd = tree.dist[bi] + model.perturbed_weight(graph, h.edge);
            if nd < tree.dist[ai as usize] {
                tree.settle(
                    a,
                    nd,
                    tree.base_dist[bi] + model.base_weight(graph, h.edge),
                    tree.hops[bi] + 1,
                    Some((h.to, h.edge)),
                );
            }
        }
        if tree.dist[ai as usize] != u128::MAX {
            scratch.heap.push((Reverse(tree.dist[ai as usize]), ai));
        }
    }

    // Dijkstra restricted to the affected region.
    while let Some((Reverse(d), ui)) = scratch.heap.pop() {
        let uidx = ui as usize;
        if scratch.settled[uidx] == epoch || d > tree.dist[uidx] {
            continue;
        }
        scratch.settled[uidx] = epoch;
        let u = NodeId::new(uidx);
        for h in topo.live_neighbors(u) {
            let vi = h.to.index();
            if scratch.affected[vi] != epoch || scratch.settled[vi] == epoch {
                continue;
            }
            let nd = d + model.perturbed_weight(graph, h.edge);
            if nd < tree.dist[vi] {
                tree.settle(
                    h.to,
                    nd,
                    tree.base_dist[uidx] + model.base_weight(graph, h.edge),
                    tree.hops[uidx] + 1,
                    Some((u, h.edge)),
                );
                scratch.heap.push((Reverse(nd), vi as u32));
            }
        }
    }
    RepairStats {
        nodes_touched: scratch.affected_list.len(),
    }
}

/// Repairs `tree` in place after a single edge recovery.
///
/// Equivalent to [`repair_after_recoveries`] with a one-element slice; see
/// the [module docs](self) for the caller contract.
pub fn repair_after_recovery<T: Topology>(
    tree: &mut ShortestPathTree,
    topo: &T,
    model: &CostModel,
    recovered: EdgeId,
) -> RepairStats {
    repair_after_recoveries(tree, topo, model, &[recovered])
}

/// Repairs `tree` in place after a batch of edge recoveries, via a
/// decrease-only relaxation wave from the recovered edges' endpoints.
///
/// `topo` must be the post-recovery view. A recovered edge that is still
/// dead in the view (e.g. one endpoint's router is failed) is skipped: it
/// cannot carry traffic, so the tree is unchanged. Nodes the wave never
/// improves keep their entries verbatim — correct because an insertion
/// only ever shortens paths, and unique perturbed costs pin the parent of
/// every unimproved node.
///
/// Returns the number of nodes whose entry improved.
pub fn repair_after_recoveries<T: Topology>(
    tree: &mut ShortestPathTree,
    topo: &T,
    model: &CostModel,
    recovered: &[EdgeId],
) -> RepairStats {
    with_thread_scratch(|scratch| {
        repair_after_recoveries_with(tree, topo, model, recovered, scratch)
    })
}

/// [`repair_after_recoveries`] with caller-provided working memory, for
/// churn streams that repair the same tree repeatedly.
pub fn repair_after_recoveries_with<T: Topology>(
    tree: &mut ShortestPathTree,
    topo: &T,
    model: &CostModel,
    recovered: &[EdgeId],
    scratch: &mut RepairScratch,
) -> RepairStats {
    let graph = topo.graph();
    let n = graph.node_count();
    debug_assert!(tree.compatible_with(graph), "tree/graph size mismatch");
    debug_assert!(
        topo.node_alive(tree.source()),
        "source failure requires a full rebuild, not a repair"
    );

    scratch.begin(n);
    let epoch = scratch.epoch;
    for &e in recovered {
        if !topo.edge_alive(e) {
            continue;
        }
        let (u, v) = graph.endpoints(e);
        let w = model.perturbed_weight(graph, e);
        for (a, b) in [(u, v), (v, u)] {
            let (ai, bi) = (a.index(), b.index());
            if tree.dist[ai] == u128::MAX {
                continue;
            }
            let nd = tree.dist[ai] + w;
            if nd < tree.dist[bi] {
                tree.settle(
                    b,
                    nd,
                    tree.base_dist[ai] + model.base_weight(graph, e),
                    tree.hops[ai] + 1,
                    Some((a, e)),
                );
                scratch.heap.push((Reverse(nd), bi as u32));
            }
        }
    }

    // `affected` stamps double as the improved-node marker here.
    let mut touched = 0usize;
    while let Some((Reverse(d), ui)) = scratch.heap.pop() {
        let uidx = ui as usize;
        if d > tree.dist[uidx] {
            continue;
        }
        if scratch.affected[uidx] != epoch {
            scratch.affected[uidx] = epoch;
            touched += 1;
        }
        let u = NodeId::new(uidx);
        for h in topo.live_neighbors(u) {
            let vi = h.to.index();
            let nd = d + model.perturbed_weight(graph, h.edge);
            if nd < tree.dist[vi] {
                tree.settle(
                    h.to,
                    nd,
                    tree.base_dist[uidx] + model.base_weight(graph, h.edge),
                    tree.hops[uidx] + 1,
                    Some((u, h.edge)),
                );
                scratch.heap.push((Reverse(nd), vi as u32));
            }
        }
    }
    RepairStats {
        nodes_touched: touched,
    }
}

/// A shortest-path tree kept current across a stream of edge failures and
/// recoveries — the stateful convenience wrapper over
/// [`repair_after_failures`] / [`repair_after_recoveries`].
///
/// Owns its [`FailureSet`], so callers only announce events; the view
/// bookkeeping and the post-event contract of the repair functions are
/// handled internally. Node failures are intentionally not part of this
/// API (a source failure is not expressible as a repair) — callers that
/// need them should go through `rbpc_core`'s oracle layer, which falls
/// back to a rebuild.
///
/// ```
/// use rbpc_graph::{shortest_path_tree, CostModel, DynamicSpt, Graph, Metric};
/// # fn main() -> Result<(), rbpc_graph::GraphError> {
/// let mut g = Graph::new(3);
/// let ab = g.add_edge(0, 1, 1)?;
/// g.add_edge(1, 2, 1)?;
/// g.add_edge(0, 2, 5)?;
/// let model = CostModel::new(Metric::Weighted, 3);
/// let mut spt = DynamicSpt::new(&g, &model, 0.into());
/// assert_eq!(spt.tree().base_dist(2.into()), Some(2));
/// spt.fail_edge(ab);
/// assert_eq!(spt.tree().base_dist(2.into()), Some(5));
/// spt.recover_edge(ab);
/// assert_eq!(spt.tree(), &shortest_path_tree(&g, &model, 0.into()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DynamicSpt<'g> {
    graph: &'g Graph,
    model: CostModel,
    failures: FailureSet,
    tree: ShortestPathTree,
    scratch: RepairScratch,
}

impl<'g> DynamicSpt<'g> {
    /// Builds the initial tree over the unfailed graph.
    pub fn new(graph: &'g Graph, model: &CostModel, source: NodeId) -> Self {
        DynamicSpt {
            graph,
            model: *model,
            failures: FailureSet::new(),
            tree: shortest_path_tree(graph, model, source),
            scratch: RepairScratch::new(),
        }
    }

    /// Builds the initial tree over `graph` with `failures` already in
    /// effect (one full Dijkstra; subsequent events are incremental).
    pub fn with_failures(
        graph: &'g Graph,
        model: &CostModel,
        source: NodeId,
        failures: FailureSet,
    ) -> Self {
        let tree = shortest_path_tree(&failures.view(graph), model, source);
        DynamicSpt {
            graph,
            model: *model,
            failures,
            tree,
            scratch: RepairScratch::new(),
        }
    }

    /// Incremental repairs served so far by the internal scratch arena
    /// (no-op events are not counted).
    #[inline]
    pub fn repairs_served(&self) -> u64 {
        self.scratch.runs()
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The cost model the tree is canonical under.
    #[inline]
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// The current tree — always bit-identical to a fresh
    /// `shortest_path_tree` over [`failures()`](Self::failures)' view.
    #[inline]
    pub fn tree(&self) -> &ShortestPathTree {
        &self.tree
    }

    /// The failure state the tree currently reflects.
    #[inline]
    pub fn failures(&self) -> &FailureSet {
        &self.failures
    }

    /// Marks `e` failed and repairs the tree. Failing an already-failed
    /// edge is a no-op.
    pub fn fail_edge(&mut self, e: EdgeId) -> RepairStats {
        if self.failures.edge_failed(e) {
            return RepairStats::default();
        }
        self.failures.fail_edge(e);
        if self.failures.node_failed(self.tree.source()) {
            return RepairStats::default(); // tree is all-unreachable and stays so
        }
        let view = self.failures.view(self.graph);
        repair_after_failures_with(&mut self.tree, &view, &self.model, &[e], &mut self.scratch)
    }

    /// Clears `e` from the failure set and repairs the tree. Recovering an
    /// edge that was not failed is a no-op.
    pub fn recover_edge(&mut self, e: EdgeId) -> RepairStats {
        if !self.failures.edge_failed(e) {
            return RepairStats::default();
        }
        self.failures.restore_edge(e);
        if self.failures.node_failed(self.tree.source()) {
            return RepairStats::default();
        }
        let view = self.failures.view(self.graph);
        repair_after_recoveries_with(&mut self.tree, &view, &self.model, &[e], &mut self.scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DetRng, Metric};

    fn model() -> CostModel {
        CostModel::new(Metric::Weighted, 17)
    }

    /// The same 5-node weighted graph the Dijkstra tests use.
    fn sample() -> Graph {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 10).unwrap();
        g.add_edge(0, 2, 3).unwrap();
        g.add_edge(2, 1, 4).unwrap();
        g.add_edge(1, 3, 2).unwrap();
        g.add_edge(2, 3, 8).unwrap();
        g.add_edge(3, 4, 7).unwrap();
        g.add_edge(2, 4, 20).unwrap();
        g
    }

    /// Deterministic pseudo-random multigraph (may be disconnected).
    fn random_graph(n: usize, edges: usize, seed: u64) -> Graph {
        let mut g = Graph::new(n);
        let mut rng = DetRng::seed_from_u64(seed);
        let mut added = 0usize;
        while added < edges {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                let w = rng.gen_range(1u32..=50);
                g.add_edge(a, b, w).unwrap();
                added += 1;
            }
        }
        g
    }

    #[test]
    fn single_failure_matches_rebuild_everywhere() {
        let g = sample();
        let m = model();
        for s in g.nodes() {
            let base = shortest_path_tree(&g, &m, s);
            for e in g.edge_ids() {
                let failures = FailureSet::of_edge(e);
                let view = failures.view(&g);
                let mut repaired = base.clone();
                repair_after_failure(&mut repaired, &view, &m, e);
                let rebuilt = shortest_path_tree(&view, &m, s);
                assert_eq!(repaired, rebuilt, "source {s}, failed edge {e}");
            }
        }
    }

    #[test]
    fn non_tree_edge_failure_is_noop() {
        let g = sample();
        let m = model();
        let tree = shortest_path_tree(&g, &m, 0.into());
        let non_tree: Vec<EdgeId> = g
            .edge_ids()
            .filter(|&e| {
                let (u, v) = g.endpoints(e);
                tree.parent_edge(u) != Some(e) && tree.parent_edge(v) != Some(e)
            })
            .collect();
        assert!(
            !non_tree.is_empty(),
            "sample graph must have non-tree edges"
        );
        for e in non_tree {
            let failures = FailureSet::of_edge(e);
            let view = failures.view(&g);
            let mut repaired = tree.clone();
            let stats = repair_after_failure(&mut repaired, &view, &m, e);
            assert_eq!(stats.nodes_touched, 0);
            assert_eq!(repaired, tree);
        }
    }

    #[test]
    fn bridge_failure_detaches_subtree() {
        let g = sample();
        let m = model();
        // 3-4 is node 4's only cheap attachment; failing both its edges
        // makes 4 unreachable.
        let e34 = g.find_edge(3.into(), 4.into()).unwrap();
        let e24 = g.find_edge(2.into(), 4.into()).unwrap();
        let mut failures = FailureSet::new();
        failures.fail_edge(e34);
        failures.fail_edge(e24);
        let view = failures.view(&g);
        let mut tree = shortest_path_tree(&g, &m, 0.into());
        let stats = repair_after_failures(&mut tree, &view, &m, &[e34, e24]);
        assert!(stats.nodes_touched >= 1);
        assert!(!tree.reachable(4.into()));
        assert_eq!(tree, shortest_path_tree(&view, &m, 0.into()));
    }

    #[test]
    fn recovery_matches_rebuild_everywhere() {
        let g = sample();
        let m = model();
        for s in g.nodes() {
            for e in g.edge_ids() {
                // Start from the failed tree, then recover e.
                let failures = FailureSet::of_edge(e);
                let mut tree = shortest_path_tree(&failures.view(&g), &m, s);
                repair_after_recovery(&mut tree, &g, &m, e);
                assert_eq!(
                    tree,
                    shortest_path_tree(&g, &m, s),
                    "source {s}, recovered edge {e}"
                );
            }
        }
    }

    #[test]
    fn parallel_edge_failure_falls_back_to_twin() {
        let mut g = Graph::new(2);
        let cheap = g.add_edge(0, 1, 1).unwrap();
        let pricey = g.add_edge(0, 1, 9).unwrap();
        let m = model();
        let mut tree = shortest_path_tree(&g, &m, 0.into());
        assert_eq!(tree.parent_edge(1.into()), Some(cheap));
        let failures = FailureSet::of_edge(cheap);
        let view = failures.view(&g);
        let stats = repair_after_failure(&mut tree, &view, &m, cheap);
        assert_eq!(stats.nodes_touched, 1);
        assert_eq!(tree.parent_edge(1.into()), Some(pricey));
        assert_eq!(tree, shortest_path_tree(&view, &m, 0.into()));
    }

    #[test]
    fn batch_failure_matches_rebuild_on_random_graphs() {
        for seed in 0..8u64 {
            let g = random_graph(40, 100, seed);
            let m = CostModel::new(Metric::Weighted, seed ^ 0xABCD);
            let mut rng = DetRng::seed_from_u64(seed.wrapping_mul(77));
            let batch: Vec<EdgeId> = (0..5)
                .map(|_| EdgeId::new(rng.gen_range(0..g.edge_count())))
                .collect();
            let mut failures = FailureSet::new();
            for &e in &batch {
                failures.fail_edge(e);
            }
            let view = failures.view(&g);
            let mut tree = shortest_path_tree(&g, &m, 0.into());
            repair_after_failures(&mut tree, &view, &m, &batch);
            assert_eq!(tree, shortest_path_tree(&view, &m, 0.into()), "seed {seed}");
        }
    }

    #[test]
    fn node_failure_as_incident_edges_matches_rebuild() {
        let g = sample();
        let m = model();
        for dead in 1..5usize {
            let mut failures = FailureSet::new();
            failures.fail_node(dead.into());
            let incident: Vec<EdgeId> = g.neighbors(dead.into()).map(|h| h.edge).collect();
            let view = failures.view(&g);
            let mut tree = shortest_path_tree(&g, &m, 0.into());
            repair_after_failures(&mut tree, &view, &m, &incident);
            assert_eq!(
                tree,
                shortest_path_tree(&view, &m, 0.into()),
                "failed node {dead}"
            );
            assert!(!tree.reachable(dead.into()));
        }
    }

    #[test]
    fn dynamic_spt_tracks_random_churn() {
        for seed in 0..4u64 {
            let g = random_graph(30, 70, seed);
            let m = CostModel::new(Metric::Weighted, seed + 1);
            let mut spt = DynamicSpt::new(&g, &m, 0.into());
            let mut rng = DetRng::seed_from_u64(seed ^ 0x5EED);
            for step in 0..60 {
                let e = EdgeId::new(rng.gen_range(0..g.edge_count()));
                if spt.failures().edge_failed(e) {
                    spt.recover_edge(e);
                } else {
                    spt.fail_edge(e);
                }
                let rebuilt = shortest_path_tree(&spt.failures().view(&g), &m, 0.into());
                assert_eq!(spt.tree(), &rebuilt, "seed {seed}, step {step}");
            }
        }
    }

    #[test]
    fn shared_scratch_matches_fresh_scratch() {
        // One scratch across many repairs (and across graphs of different
        // sizes) must behave exactly like fresh allocations each time.
        let mut scratch = RepairScratch::new();
        for seed in 0..4u64 {
            let g = random_graph(20 + 5 * seed as usize, 60, seed);
            let m = CostModel::new(Metric::Weighted, seed);
            for e in g.edge_ids().step_by(7) {
                let failures = FailureSet::of_edge(e);
                let view = failures.view(&g);
                let mut with_scratch = shortest_path_tree(&g, &m, 0.into());
                repair_after_failures_with(&mut with_scratch, &view, &m, &[e], &mut scratch);
                assert_eq!(with_scratch, shortest_path_tree(&view, &m, 0.into()));
                repair_after_recoveries_with(&mut with_scratch, &g, &m, &[e], &mut scratch);
                assert_eq!(with_scratch, shortest_path_tree(&g, &m, 0.into()));
            }
        }
        assert!(scratch.runs() > 4);
    }

    #[test]
    fn dynamic_spt_counts_repairs() {
        let g = sample();
        let m = model();
        let e = g.find_edge(0.into(), 2.into()).unwrap();
        let mut spt = DynamicSpt::new(&g, &m, 0.into());
        assert_eq!(spt.repairs_served(), 0);
        spt.fail_edge(e);
        spt.recover_edge(e);
        assert_eq!(spt.repairs_served(), 2);
    }

    #[test]
    fn redundant_events_are_noops() {
        let g = sample();
        let m = model();
        let e = g.find_edge(0.into(), 2.into()).unwrap();
        let mut spt = DynamicSpt::new(&g, &m, 0.into());
        assert_eq!(spt.recover_edge(e).nodes_touched, 0); // not failed
        let first = spt.fail_edge(e);
        assert!(first.nodes_touched > 0);
        assert_eq!(spt.fail_edge(e).nodes_touched, 0); // already failed
        let back = spt.recover_edge(e);
        assert_eq!(back.nodes_touched, first.nodes_touched);
        assert_eq!(spt.tree(), &shortest_path_tree(&g, &m, 0.into()));
    }

    #[test]
    fn with_failures_starts_from_failed_state() {
        let g = sample();
        let m = model();
        let e = g.find_edge(0.into(), 2.into()).unwrap();
        let mut spt = DynamicSpt::with_failures(&g, &m, 0.into(), FailureSet::of_edge(e));
        assert_eq!(
            spt.tree(),
            &shortest_path_tree(&FailureSet::of_edge(e).view(&g), &m, 0.into())
        );
        spt.recover_edge(e);
        assert_eq!(spt.tree(), &shortest_path_tree(&g, &m, 0.into()));
    }
}
