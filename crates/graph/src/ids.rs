//! Strongly-typed node and edge identifiers.

use core::fmt;

/// Identifier of a node (router) in a [`Graph`](crate::Graph).
///
/// Node ids are dense indices in `0..graph.node_count()`.
///
/// ```
/// use rbpc_graph::NodeId;
/// let v = NodeId::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(v.to_string(), "n7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// Returns the raw index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(index: usize) -> Self {
        NodeId::new(index)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an undirected edge (link) in a [`Graph`](crate::Graph).
///
/// Edge ids are dense indices in `0..graph.edge_count()`, assigned in
/// insertion order. Parallel edges receive distinct ids.
///
/// ```
/// use rbpc_graph::EdgeId;
/// let e = EdgeId::new(3);
/// assert_eq!(e.index(), 3);
/// assert_eq!(e.to_string(), "e3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a raw index.
    #[inline]
    pub fn new(index: usize) -> Self {
        EdgeId(index as u32)
    }

    /// Returns the raw index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for EdgeId {
    #[inline]
    fn from(index: usize) -> Self {
        EdgeId::new(index)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_round_trip() {
        for i in [0usize, 1, 17, 1_000_000] {
            assert_eq!(NodeId::new(i).index(), i);
            assert_eq!(NodeId::from(i).index(), i);
        }
    }

    #[test]
    fn edge_id_round_trip() {
        for i in [0usize, 1, 17, 1_000_000] {
            assert_eq!(EdgeId::new(i).index(), i);
            assert_eq!(EdgeId::from(i).index(), i);
        }
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(9));
        let set: HashSet<NodeId> = [1, 2, 2, 3].iter().map(|&i| NodeId::new(i)).collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", NodeId::new(5)), "n5");
        assert_eq!(format!("{:?}", EdgeId::new(5)), "e5");
    }
}
