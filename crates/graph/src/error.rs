//! Error types for graph construction and path manipulation.

use crate::{EdgeId, NodeId};
use core::fmt;

/// Error returned by graph construction and mutation operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An endpoint index was `>= node_count`.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The number of nodes in the graph.
        node_count: usize,
    },
    /// An edge index was `>= edge_count`.
    EdgeOutOfRange {
        /// The offending edge.
        edge: EdgeId,
        /// The number of edges in the graph.
        edge_count: usize,
    },
    /// Self-loops are rejected: a link connects two distinct routers.
    SelfLoop {
        /// The node both endpoints referred to.
        node: NodeId,
    },
    /// Edge weights must be strictly positive (OSPF-style costs).
    ZeroWeight,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range (graph has {node_count} nodes)")
            }
            GraphError::EdgeOutOfRange { edge, edge_count } => {
                write!(f, "edge {edge} out of range (graph has {edge_count} edges)")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop at {node} rejected")
            }
            GraphError::ZeroWeight => write!(f, "edge weight must be strictly positive"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Error returned by [`Path`](crate::Path) construction and concatenation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PathError {
    /// The node/edge sequences do not describe a walk in the graph.
    NotAWalk {
        /// Position of the first offending hop.
        position: usize,
    },
    /// Two paths were concatenated but the first does not end where the
    /// second starts.
    ConcatMismatch {
        /// Last node of the left path.
        left_end: NodeId,
        /// First node of the right path.
        right_start: NodeId,
    },
    /// A path was requested between nodes that are not connected.
    Disconnected {
        /// Source node.
        source: NodeId,
        /// Target node.
        target: NodeId,
    },
    /// An empty node sequence was supplied; paths contain at least one node.
    Empty,
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PathError::NotAWalk { position } => {
                write!(f, "node/edge sequence is not a walk at hop {position}")
            }
            PathError::ConcatMismatch {
                left_end,
                right_start,
            } => write!(
                f,
                "cannot concatenate: left path ends at {left_end}, right starts at {right_start}"
            ),
            PathError::Disconnected { source, target } => {
                write!(f, "no path between {source} and {target}")
            }
            PathError::Empty => write!(f, "a path must contain at least one node"),
        }
    }
}

impl std::error::Error for PathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<String> = vec![
            GraphError::NodeOutOfRange {
                node: NodeId::new(9),
                node_count: 4,
            }
            .to_string(),
            GraphError::SelfLoop {
                node: NodeId::new(2),
            }
            .to_string(),
            GraphError::ZeroWeight.to_string(),
        ];
        for e in errs {
            assert!(!e.is_empty());
            assert!(e.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<GraphError>();
        assert_err::<PathError>();
    }

    #[test]
    fn path_error_display() {
        let e = PathError::ConcatMismatch {
            left_end: NodeId::new(1),
            right_start: NodeId::new(2),
        };
        assert!(e.to_string().contains("n1"));
        assert!(e.to_string().contains("n2"));
    }
}
