//! Failure sets and masked topology views.
//!
//! Restoration experiments repeatedly ask "what does the network look like
//! after these elements fail?". [`FailureView`] answers that without copying
//! the graph: it is the original [`Graph`] plus a [`FailureSet`] mask, and
//! every shortest-path routine in this crate runs over any [`Topology`].

use crate::{EdgeId, Graph, HalfEdge, NodeId};
use std::collections::BTreeSet;

/// A view of a network: the underlying graph plus liveness of each element.
///
/// Implemented by [`Graph`] itself (everything alive) and by
/// [`FailureView`] (elements masked by a [`FailureSet`]).
pub trait Topology {
    /// The underlying graph.
    fn graph(&self) -> &Graph;

    /// Whether edge `e` is operational.
    fn edge_alive(&self, e: EdgeId) -> bool;

    /// Whether node `v` is operational.
    fn node_alive(&self, v: NodeId) -> bool;

    /// Iterates over the live half-edges out of `u`: the edge must be alive
    /// and lead to a live node. Yields nothing if `u` itself is down.
    fn live_neighbors(&self, u: NodeId) -> LiveNeighbors<'_, Self>
    where
        Self: Sized,
    {
        LiveNeighbors {
            topo: self,
            from_alive: self.node_alive(u),
            inner: self.graph().neighbors_raw(u),
        }
    }
}

/// Iterator over live half-edges; see [`Topology::live_neighbors`].
#[derive(Debug)]
pub struct LiveNeighbors<'a, T: Topology> {
    topo: &'a T,
    from_alive: bool,
    inner: std::slice::Iter<'a, (NodeId, EdgeId)>,
}

impl<'a, T: Topology> Iterator for LiveNeighbors<'a, T> {
    type Item = HalfEdge;

    fn next(&mut self) -> Option<HalfEdge> {
        if !self.from_alive {
            return None;
        }
        for &(to, edge) in self.inner.by_ref() {
            if self.topo.edge_alive(edge) && self.topo.node_alive(to) {
                return Some(HalfEdge { to, edge });
            }
        }
        None
    }
}

impl Graph {
    /// Raw adjacency slice iterator (internal; used by [`LiveNeighbors`]).
    #[doc(hidden)]
    pub fn neighbors_raw(&self, u: NodeId) -> std::slice::Iter<'_, (NodeId, EdgeId)> {
        self.adjacency_slice(u).iter()
    }
}

impl Topology for Graph {
    #[inline]
    fn graph(&self) -> &Graph {
        self
    }

    #[inline]
    fn edge_alive(&self, _e: EdgeId) -> bool {
        true
    }

    #[inline]
    fn node_alive(&self, _v: NodeId) -> bool {
        true
    }
}

impl<T: Topology> Topology for &T {
    #[inline]
    fn graph(&self) -> &Graph {
        (**self).graph()
    }

    #[inline]
    fn edge_alive(&self, e: EdgeId) -> bool {
        (**self).edge_alive(e)
    }

    #[inline]
    fn node_alive(&self, v: NodeId) -> bool {
        (**self).node_alive(v)
    }
}

/// A set of failed links and routers.
///
/// A failed router implicitly fails all its incident links (the paper treats
/// a node failure as the failure of all incident edges).
///
/// ```
/// use rbpc_graph::{FailureSet, Graph, Topology};
/// # fn main() -> Result<(), rbpc_graph::GraphError> {
/// let mut g = Graph::new(3);
/// let e01 = g.add_edge(0, 1, 1)?;
/// let e12 = g.add_edge(1, 2, 1)?;
///
/// let failures = FailureSet::of_nodes([1usize]);
/// let view = failures.view(&g);
/// assert!(!view.node_alive(1.into()));
/// // edges stay "alive" as records, but no live neighbor crosses node 1:
/// assert_eq!(view.live_neighbors(0.into()).count(), 0);
/// # let _ = (e01, e12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureSet {
    // Ordered sets: `failed_edges`/`failed_nodes` feed deterministic
    // output (restoration order, trace events), so iteration order must
    // not depend on a hasher.
    edges: BTreeSet<EdgeId>,
    nodes: BTreeSet<NodeId>,
}

impl FailureSet {
    /// Creates an empty failure set (everything operational).
    pub fn new() -> Self {
        FailureSet::default()
    }

    /// A failure set containing a single failed edge.
    pub fn of_edge(e: EdgeId) -> Self {
        let mut f = FailureSet::new();
        f.fail_edge(e);
        f
    }

    /// A failure set containing the given failed edges.
    pub fn of_edges(edges: impl IntoIterator<Item = EdgeId>) -> Self {
        let mut f = FailureSet::new();
        for e in edges {
            f.fail_edge(e);
        }
        f
    }

    /// A failure set containing the given failed nodes.
    pub fn of_nodes<N: Into<NodeId>>(nodes: impl IntoIterator<Item = N>) -> Self {
        let mut f = FailureSet::new();
        for n in nodes {
            f.fail_node(n.into());
        }
        f
    }

    /// Marks an edge as failed. Idempotent.
    pub fn fail_edge(&mut self, e: EdgeId) -> &mut Self {
        self.edges.insert(e);
        self
    }

    /// Marks a node (and implicitly its incident edges) as failed. Idempotent.
    pub fn fail_node(&mut self, v: NodeId) -> &mut Self {
        self.nodes.insert(v);
        self
    }

    /// Restores a previously failed edge. Returns `true` if it was failed.
    pub fn restore_edge(&mut self, e: EdgeId) -> bool {
        self.edges.remove(&e)
    }

    /// Restores a previously failed node. Returns `true` if it was failed.
    pub fn restore_node(&mut self, v: NodeId) -> bool {
        self.nodes.remove(&v)
    }

    /// Whether this edge is in the failed set (node failures not considered).
    pub fn edge_failed(&self, e: EdgeId) -> bool {
        self.edges.contains(&e)
    }

    /// Whether this node is in the failed set.
    pub fn node_failed(&self, v: NodeId) -> bool {
        self.nodes.contains(&v)
    }

    /// Whether nothing has failed.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty() && self.nodes.is_empty()
    }

    /// Number of explicitly failed edges.
    pub fn failed_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of failed nodes.
    pub fn failed_node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over explicitly failed edges in ascending id order.
    pub fn failed_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.iter().copied()
    }

    /// Iterates over failed nodes in ascending id order.
    pub fn failed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// The paper's `k`: total failed elements, counting a node failure as
    /// the failure of all its incident edges in `graph`.
    pub fn equivalent_edge_failures(&self, graph: &Graph) -> usize {
        let mut failed: BTreeSet<EdgeId> = self.edges.clone();
        for &v in &self.nodes {
            for h in graph.neighbors(v) {
                failed.insert(h.edge);
            }
        }
        failed.len()
    }

    /// Wraps a graph into a [`FailureView`] masked by this failure set.
    pub fn view<'a>(&'a self, graph: &'a Graph) -> FailureView<'a> {
        FailureView {
            graph,
            failures: self,
        }
    }
}

impl FromIterator<EdgeId> for FailureSet {
    fn from_iter<I: IntoIterator<Item = EdgeId>>(iter: I) -> Self {
        FailureSet::of_edges(iter)
    }
}

impl Extend<EdgeId> for FailureSet {
    fn extend<I: IntoIterator<Item = EdgeId>>(&mut self, iter: I) {
        for e in iter {
            self.fail_edge(e);
        }
    }
}

/// A [`Graph`] with a [`FailureSet`] mask applied — the network `G′ = (V, E − E_k)`
/// from the paper, without copying `G`.
#[derive(Debug, Clone, Copy)]
pub struct FailureView<'a> {
    graph: &'a Graph,
    failures: &'a FailureSet,
}

impl<'a> FailureView<'a> {
    /// Creates a view of `graph` masked by `failures`.
    pub fn new(graph: &'a Graph, failures: &'a FailureSet) -> Self {
        FailureView { graph, failures }
    }

    /// The failure set backing this view.
    pub fn failures(&self) -> &FailureSet {
        self.failures
    }
}

impl Topology for FailureView<'_> {
    #[inline]
    fn graph(&self) -> &Graph {
        self.graph
    }

    #[inline]
    fn edge_alive(&self, e: EdgeId) -> bool {
        if self.failures.edge_failed(e) {
            return false;
        }
        let r = self.graph.edge(e);
        !self.failures.node_failed(r.u) && !self.failures.node_failed(r.v)
    }

    #[inline]
    fn node_alive(&self, v: NodeId) -> bool {
        !self.failures.node_failed(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, 1).unwrap();
        }
        g
    }

    #[test]
    fn graph_is_fully_alive_topology() {
        let g = path_graph(3);
        assert!(g.edge_alive(EdgeId::new(0)));
        assert!(g.node_alive(NodeId::new(2)));
        assert_eq!(g.live_neighbors(1.into()).count(), 2);
    }

    #[test]
    fn edge_failure_masks_edge() {
        let g = path_graph(3);
        let f = FailureSet::of_edge(EdgeId::new(0));
        let v = f.view(&g);
        assert!(!v.edge_alive(EdgeId::new(0)));
        assert!(v.edge_alive(EdgeId::new(1)));
        assert_eq!(v.live_neighbors(0.into()).count(), 0);
        assert_eq!(v.live_neighbors(1.into()).count(), 1);
    }

    #[test]
    fn node_failure_kills_incident_edges() {
        let g = path_graph(3);
        let f = FailureSet::of_nodes([1usize]);
        let v = f.view(&g);
        assert!(!v.node_alive(1.into()));
        assert!(!v.edge_alive(EdgeId::new(0)));
        assert!(!v.edge_alive(EdgeId::new(1)));
        assert_eq!(v.live_neighbors(1.into()).count(), 0);
        assert_eq!(f.equivalent_edge_failures(&g), 2);
    }

    #[test]
    fn restore_round_trip() {
        let mut f = FailureSet::new();
        f.fail_edge(EdgeId::new(3)).fail_node(NodeId::new(1));
        assert!(!f.is_empty());
        assert!(f.restore_edge(EdgeId::new(3)));
        assert!(!f.restore_edge(EdgeId::new(3)));
        assert!(f.restore_node(NodeId::new(1)));
        assert!(f.is_empty());
    }

    #[test]
    fn collectors_and_counts() {
        let f: FailureSet = [EdgeId::new(1), EdgeId::new(2), EdgeId::new(1)]
            .into_iter()
            .collect();
        assert_eq!(f.failed_edge_count(), 2);
        assert_eq!(f.failed_node_count(), 0);
        let mut g = FailureSet::new();
        g.extend([EdgeId::new(7)]);
        assert!(g.edge_failed(EdgeId::new(7)));
    }

    #[test]
    fn equivalent_edge_failures_deduplicates() {
        let g = path_graph(3);
        let mut f = FailureSet::of_nodes([1usize]);
        f.fail_edge(EdgeId::new(0)); // already implied by node 1 failing
        assert_eq!(f.equivalent_edge_failures(&g), 2);
    }

    #[test]
    fn view_is_copy_and_exposes_failures() {
        let g = path_graph(2);
        let f = FailureSet::of_edge(EdgeId::new(0));
        let v = FailureView::new(&g, &f);
        let w = v; // Copy
        assert!(w.failures().edge_failed(EdgeId::new(0)));
        assert!(!v.edge_alive(EdgeId::new(0)));
    }
}
