//! Directed graphs — for the paper's negative results.
//!
//! The RBPC theorems hold for *undirected* networks; the paper's Figure 5
//! shows that in a directed graph a **single** arc failure can force a new
//! shortest path that is the concatenation of `Ω(n)` original shortest
//! paths. This module provides the minimal directed substrate to state and
//! verify that: a directed multigraph, Dijkstra over it, and arc masking.

use crate::{GraphError, NodeId};
use core::fmt;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifier of a directed arc in a [`DiGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ArcId(u32);

impl ArcId {
    /// Creates an arc id from a raw index.
    pub fn new(index: usize) -> Self {
        ArcId(index as u32)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ArcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for ArcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// One stored arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArcRecord {
    /// Tail (source) of the arc.
    pub from: NodeId,
    /// Head (target) of the arc.
    pub to: NodeId,
    /// Strictly positive weight.
    pub weight: u32,
}

/// A directed weighted multigraph over dense node indices.
///
/// Kept intentionally small: enough to compute directed shortest paths
/// with arc failures and check the paper's directed counterexamples.
///
/// ```
/// use rbpc_graph::{DiGraph, NodeId};
/// # fn main() -> Result<(), rbpc_graph::GraphError> {
/// let mut g = DiGraph::new(3);
/// g.add_arc(0, 1, 1)?;
/// g.add_arc(1, 2, 1)?;
/// assert_eq!(g.distances(NodeId::new(0), None)[2], Some(2));
/// // No arc back: 2 cannot reach 0.
/// assert_eq!(g.distances(NodeId::new(2), None)[0], None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiGraph {
    arcs: Vec<ArcRecord>,
    out: Vec<Vec<(NodeId, ArcId)>>,
}

impl DiGraph {
    /// Creates a directed graph with `node_count` isolated nodes.
    pub fn new(node_count: usize) -> Self {
        DiGraph {
            arcs: Vec::new(),
            out: vec![Vec::new(); node_count],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Adds an arc `from → to` with a strictly positive weight.
    ///
    /// # Errors
    ///
    /// Rejects self-loops, out-of-range endpoints, and zero weights, as
    /// [`Graph::add_edge`](crate::Graph::add_edge) does.
    pub fn add_arc(
        &mut self,
        from: impl Into<NodeId>,
        to: impl Into<NodeId>,
        weight: u32,
    ) -> Result<ArcId, GraphError> {
        let (from, to) = (from.into(), to.into());
        for n in [from, to] {
            if n.index() >= self.node_count() {
                return Err(GraphError::NodeOutOfRange {
                    node: n,
                    node_count: self.node_count(),
                });
            }
        }
        if from == to {
            return Err(GraphError::SelfLoop { node: from });
        }
        if weight == 0 {
            return Err(GraphError::ZeroWeight);
        }
        let id = ArcId::new(self.arcs.len());
        self.arcs.push(ArcRecord { from, to, weight });
        self.out[from.index()].push((to, id));
        Ok(id)
    }

    /// The record of an arc.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn arc(&self, a: ArcId) -> &ArcRecord {
        &self.arcs[a.index()]
    }

    /// Out-neighbors of `u` as `(head, arc)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn out_neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, ArcId)> + '_ {
        self.out[u.index()].iter().copied()
    }

    /// Single-source shortest distances, optionally masking one failed
    /// arc. `None` marks unreachable nodes.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn distances(&self, source: NodeId, failed: Option<ArcId>) -> Vec<Option<u64>> {
        let n = self.node_count();
        assert!(source.index() < n, "source {source} out of range");
        let mut dist: Vec<Option<u64>> = vec![None; n];
        let mut settled = vec![false; n];
        let mut heap: BinaryHeap<(Reverse<u64>, u32)> = BinaryHeap::new();
        dist[source.index()] = Some(0);
        heap.push((Reverse(0), source.index() as u32));
        while let Some((Reverse(d), ui)) = heap.pop() {
            if settled[ui as usize] {
                continue;
            }
            settled[ui as usize] = true;
            for &(v, a) in &self.out[ui as usize] {
                if Some(a) == failed {
                    continue;
                }
                let nd = d + u64::from(self.arcs[a.index()].weight);
                if dist[v.index()].is_none_or(|cur| nd < cur) && !settled[v.index()] {
                    dist[v.index()] = Some(nd);
                    heap.push((Reverse(nd), v.index() as u32));
                }
            }
        }
        dist
    }

    /// One shortest path `s → t` (node sequence), optionally masking a
    /// failed arc. `None` when unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn shortest_path(
        &self,
        s: NodeId,
        t: NodeId,
        failed: Option<ArcId>,
    ) -> Option<Vec<NodeId>> {
        let n = self.node_count();
        assert!(s.index() < n && t.index() < n, "endpoint out of range");
        let mut dist: Vec<Option<u64>> = vec![None; n];
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut settled = vec![false; n];
        let mut heap: BinaryHeap<(Reverse<u64>, u32)> = BinaryHeap::new();
        dist[s.index()] = Some(0);
        heap.push((Reverse(0), s.index() as u32));
        while let Some((Reverse(d), ui)) = heap.pop() {
            if settled[ui as usize] {
                continue;
            }
            settled[ui as usize] = true;
            if ui as usize == t.index() {
                break;
            }
            for &(v, a) in &self.out[ui as usize] {
                if Some(a) == failed {
                    continue;
                }
                let nd = d + u64::from(self.arcs[a.index()].weight);
                if dist[v.index()].is_none_or(|cur| nd < cur) && !settled[v.index()] {
                    dist[v.index()] = Some(nd);
                    parent[v.index()] = Some(NodeId::new(ui as usize));
                    heap.push((Reverse(nd), v.index() as u32));
                }
            }
        }
        dist[t.index()]?;
        let mut path = vec![t];
        let mut at = t;
        while at != s {
            at = parent[at.index()].expect("invariant: reachable nodes have parents");
            path.push(at);
        }
        path.reverse();
        Some(path)
    }

    /// All-pairs distance matrix (no failures); `None` for unreachable
    /// pairs. Quadratic memory — intended for the small counterexample
    /// graphs.
    pub fn distance_matrix(&self) -> Vec<Vec<Option<u64>>> {
        (0..self.node_count())
            .map(|s| self.distances(NodeId::new(s), None))
            .collect()
    }

    /// The minimum number of pieces needed to cover the node path `p` such
    /// that every piece is a shortest path of this (unfailed) digraph.
    /// Pieces that are single non-shortest arcs count too (as in
    /// Theorem 2's accounting). Greedy longest-prefix, which is optimal by
    /// subpath-closure of directed shortest paths.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a walk in the digraph.
    pub fn min_shortest_cover(&self, p: &[NodeId]) -> usize {
        if p.len() <= 1 {
            return 0;
        }
        let dist = self.distance_matrix();
        // Arc weights along the walk.
        let mut step = Vec::with_capacity(p.len() - 1);
        for w in p.windows(2) {
            let weight = self
                .out_neighbors(w[0])
                .filter(|&(to, _)| to == w[1])
                .map(|(_, a)| u64::from(self.arc(a).weight))
                .min()
                .expect("invariant: path is a walk in the digraph");
            step.push(weight);
        }
        let mut pieces = 0;
        let mut i = 0;
        while i + 1 < p.len() {
            let mut j = i;
            let mut cost = 0u64;
            while j + 1 < p.len() {
                let c = cost + step[j];
                if dist[p[i].index()][p[j + 1].index()] == Some(c) {
                    cost = c;
                    j += 1;
                } else {
                    break;
                }
            }
            if j == i {
                // Single non-shortest arc piece.
                j = i + 1;
            }
            pieces += 1;
            i = j;
        }
        pieces
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3 (cheaper), plus 3 -> 0 back.
        let mut g = DiGraph::new(4);
        g.add_arc(0, 1, 5).unwrap();
        g.add_arc(1, 3, 5).unwrap();
        g.add_arc(0, 2, 1).unwrap();
        g.add_arc(2, 3, 1).unwrap();
        g.add_arc(3, 0, 1).unwrap();
        g
    }

    #[test]
    fn directed_distances_are_asymmetric() {
        let g = diamond();
        let d0 = g.distances(NodeId::new(0), None);
        assert_eq!(d0[3], Some(2));
        let d3 = g.distances(NodeId::new(3), None);
        assert_eq!(d3[0], Some(1));
        assert_eq!(d3[1], Some(6)); // 3 -> 0 -> 1
    }

    #[test]
    fn arc_failure_changes_route() {
        let g = diamond();
        let p = g
            .shortest_path(NodeId::new(0), NodeId::new(3), None)
            .unwrap();
        assert_eq!(p, vec![NodeId::new(0), NodeId::new(2), NodeId::new(3)]);
        let cheap = ArcId::new(2); // 0 -> 2
        let p2 = g
            .shortest_path(NodeId::new(0), NodeId::new(3), Some(cheap))
            .unwrap();
        assert_eq!(p2, vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = DiGraph::new(3);
        g.add_arc(0, 1, 1).unwrap();
        assert_eq!(g.shortest_path(NodeId::new(1), NodeId::new(0), None), None);
        assert_eq!(g.distances(NodeId::new(2), None)[0], None);
    }

    #[test]
    fn validation_errors() {
        let mut g = DiGraph::new(2);
        assert!(matches!(
            g.add_arc(0, 0, 1),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            g.add_arc(0, 5, 1),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert_eq!(g.add_arc(0, 1, 0), Err(GraphError::ZeroWeight));
    }

    #[test]
    fn parallel_arcs_allowed() {
        let mut g = DiGraph::new(2);
        let a = g.add_arc(0, 1, 3).unwrap();
        let b = g.add_arc(0, 1, 1).unwrap();
        assert_ne!(a, b);
        assert_eq!(g.distances(NodeId::new(0), None)[1], Some(1));
        assert_eq!(g.arc_count(), 2);
    }

    #[test]
    fn cover_of_shortest_path_is_one() {
        let g = diamond();
        let p = g
            .shortest_path(NodeId::new(0), NodeId::new(3), None)
            .unwrap();
        assert_eq!(g.min_shortest_cover(&p), 1);
        assert_eq!(g.min_shortest_cover(&p[..1]), 0);
    }

    #[test]
    fn cover_splits_non_shortest_walk() {
        let g = diamond();
        // 0 -> 1 -> 3 costs 10; shortest is 2. The walk is covered by the
        // two arcs, each of which is shortest between its endpoints?
        // 0->1 (5): shortest 0->1 distance is 5 ✓; 1->3 (5): shortest ✓.
        let walk = vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)];
        assert_eq!(g.min_shortest_cover(&walk), 2);
    }
}
