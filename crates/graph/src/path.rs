//! Simple paths (and walks) through a graph.

use crate::{CostModel, EdgeId, Graph, NodeId, PathCost, PathError};
use core::fmt;
use std::collections::HashSet;

/// A walk through a [`Graph`]: a node sequence together with the edge used
/// at every hop (edges are explicit so parallel edges are unambiguous).
///
/// Invariants (checked at construction):
/// * at least one node;
/// * `nodes.len() == edges.len() + 1`;
/// * edge `i` connects `nodes[i]` and `nodes[i + 1]` in the graph.
///
/// Most paths produced by this crate are *simple* (no repeated node);
/// [`Path::is_simple`] distinguishes the general case.
///
/// ```
/// use rbpc_graph::{Graph, Path};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = Graph::new(3);
/// let e0 = g.add_edge(0, 1, 2)?;
/// let e1 = g.add_edge(1, 2, 3)?;
/// let p = Path::from_edges(&g, 0.into(), &[e0, e1])?;
/// assert_eq!(p.hop_count(), 2);
/// assert_eq!(p.target(), 2.into());
/// assert!(p.is_simple());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Path {
    nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
}

impl Path {
    /// The trivial path consisting of a single node and no edges.
    pub fn trivial(node: NodeId) -> Self {
        Path {
            nodes: vec![node],
            edges: Vec::new(),
        }
    }

    /// Builds a path from a start node and an edge sequence, resolving and
    /// validating each hop against `graph`.
    ///
    /// # Errors
    ///
    /// [`PathError::NotAWalk`] if some edge is not incident to the node
    /// reached so far (or is out of range).
    pub fn from_edges(graph: &Graph, start: NodeId, edges: &[EdgeId]) -> Result<Self, PathError> {
        let mut nodes = Vec::with_capacity(edges.len() + 1);
        nodes.push(start);
        let mut at = start;
        for (i, &e) in edges.iter().enumerate() {
            let rec = graph
                .edge_checked(e)
                .ok_or(PathError::NotAWalk { position: i })?;
            if !rec.touches(at) {
                return Err(PathError::NotAWalk { position: i });
            }
            at = rec.other(at);
            nodes.push(at);
        }
        Ok(Path {
            nodes,
            edges: edges.to_vec(),
        })
    }

    /// Builds a path from a node sequence, picking for each hop the
    /// cheapest edge (under `model`) among parallel edges.
    ///
    /// # Errors
    ///
    /// * [`PathError::Empty`] for an empty node sequence;
    /// * [`PathError::NotAWalk`] if consecutive nodes are not adjacent.
    pub fn from_nodes(
        graph: &Graph,
        model: &CostModel,
        nodes: &[NodeId],
    ) -> Result<Self, PathError> {
        if nodes.is_empty() {
            return Err(PathError::Empty);
        }
        let mut edges = Vec::with_capacity(nodes.len() - 1);
        for (i, w) in nodes.windows(2).enumerate() {
            let e = graph
                .edges_between(w[0], w[1])
                .into_iter()
                .min_by_key(|&e| model.perturbed_weight(graph, e))
                .ok_or(PathError::NotAWalk { position: i })?;
            edges.push(e);
        }
        Ok(Path {
            nodes: nodes.to_vec(),
            edges,
        })
    }

    /// Constructs a path from pre-validated parts.
    ///
    /// Intended for algorithms inside this crate family that already
    /// guarantee the walk invariant; cheaper than re-validating.
    ///
    /// # Panics
    ///
    /// Debug-panics if the sequences have inconsistent lengths or are empty.
    pub fn from_parts_unchecked(nodes: Vec<NodeId>, edges: Vec<EdgeId>) -> Self {
        debug_assert!(!nodes.is_empty());
        debug_assert_eq!(nodes.len(), edges.len() + 1);
        Path { nodes, edges }
    }

    /// First node of the path.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node of the path.
    #[inline]
    pub fn target(&self) -> NodeId {
        *self.nodes.last().expect("invariant: paths are nonempty")
    }

    /// Number of edges (hops). Zero for a trivial path.
    #[inline]
    pub fn hop_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether this is a trivial single-node path.
    #[inline]
    pub fn is_trivial(&self) -> bool {
        self.edges.is_empty()
    }

    /// The node sequence.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The edge sequence.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Whether no node repeats.
    pub fn is_simple(&self) -> bool {
        let mut seen = HashSet::with_capacity(self.nodes.len());
        self.nodes.iter().all(|n| seen.insert(*n))
    }

    /// Whether the path traverses edge `e`.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges.contains(&e)
    }

    /// Whether the path visits node `v`.
    pub fn contains_node(&self, v: NodeId) -> bool {
        self.nodes.contains(&v)
    }

    /// Position of node `v` on the path, if visited (first occurrence).
    pub fn position_of(&self, v: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&n| n == v)
    }

    /// Total cost of the path under `model`.
    pub fn cost(&self, graph: &Graph, model: &CostModel) -> PathCost {
        model.path_cost(graph, &self.edges)
    }

    /// The subpath spanning node positions `from..=to` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `from > to` or `to >= self.nodes().len()`.
    pub fn subpath(&self, from: usize, to: usize) -> Path {
        assert!(from <= to && to < self.nodes.len(), "subpath out of range");
        Path {
            nodes: self.nodes[from..=to].to_vec(),
            edges: self.edges[from..to].to_vec(),
        }
    }

    /// Concatenates `self` with `next`.
    ///
    /// # Errors
    ///
    /// [`PathError::ConcatMismatch`] unless `self` ends where `next` starts.
    pub fn concat(&self, next: &Path) -> Result<Path, PathError> {
        if self.target() != next.source() {
            return Err(PathError::ConcatMismatch {
                left_end: self.target(),
                right_start: next.source(),
            });
        }
        let mut nodes = self.nodes.clone();
        nodes.extend_from_slice(&next.nodes[1..]);
        let mut edges = self.edges.clone();
        edges.extend_from_slice(&next.edges);
        Ok(Path { nodes, edges })
    }

    /// The same path walked in the opposite direction.
    pub fn reversed(&self) -> Path {
        Path {
            nodes: self.nodes.iter().rev().copied().collect(),
            edges: self.edges.iter().rev().copied().collect(),
        }
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Path[")?;
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, " -{}- ", self.edges[i - 1])?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metric;

    fn square() -> (Graph, Vec<EdgeId>) {
        let mut g = Graph::new(4);
        let e = vec![
            g.add_edge(0, 1, 1).unwrap(),
            g.add_edge(1, 2, 1).unwrap(),
            g.add_edge(2, 3, 1).unwrap(),
            g.add_edge(3, 0, 1).unwrap(),
        ];
        (g, e)
    }

    #[test]
    fn from_edges_resolves_nodes() {
        let (g, e) = square();
        let p = Path::from_edges(&g, 0.into(), &[e[0], e[1], e[2]]).unwrap();
        assert_eq!(
            p.nodes(),
            &[
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
        assert_eq!(p.source(), 0.into());
        assert_eq!(p.target(), 3.into());
        assert_eq!(p.hop_count(), 3);
    }

    #[test]
    fn from_edges_rejects_non_walk() {
        let (g, e) = square();
        let err = Path::from_edges(&g, 0.into(), &[e[0], e[2]]).unwrap_err();
        assert_eq!(err, PathError::NotAWalk { position: 1 });
    }

    #[test]
    fn from_nodes_picks_cheapest_parallel_edge() {
        let mut g = Graph::new(2);
        let cheap = g.add_edge(0, 1, 1).unwrap();
        let pricey = g.add_edge(0, 1, 10).unwrap();
        let m = CostModel::new(Metric::Weighted, 1);
        let p = Path::from_nodes(&g, &m, &[0.into(), 1.into()]).unwrap();
        assert_eq!(p.edges(), &[cheap]);
        let _ = pricey;
    }

    #[test]
    fn from_nodes_error_cases() {
        let (g, _) = square();
        let m = CostModel::new(Metric::Weighted, 1);
        assert_eq!(Path::from_nodes(&g, &m, &[]).unwrap_err(), PathError::Empty);
        assert_eq!(
            Path::from_nodes(&g, &m, &[0.into(), 2.into()]).unwrap_err(),
            PathError::NotAWalk { position: 0 }
        );
    }

    #[test]
    fn trivial_path() {
        let p = Path::trivial(5.into());
        assert!(p.is_trivial());
        assert!(p.is_simple());
        assert_eq!(p.source(), p.target());
        assert_eq!(p.hop_count(), 0);
    }

    #[test]
    fn simplicity_detection() {
        let (g, e) = square();
        let walk = Path::from_edges(&g, 0.into(), &[e[0], e[0]]).unwrap();
        assert!(!walk.is_simple());
        let simple = Path::from_edges(&g, 0.into(), &[e[0], e[1]]).unwrap();
        assert!(simple.is_simple());
    }

    #[test]
    fn concat_and_mismatch() {
        let (g, e) = square();
        let a = Path::from_edges(&g, 0.into(), &[e[0]]).unwrap();
        let b = Path::from_edges(&g, 1.into(), &[e[1]]).unwrap();
        let ab = a.concat(&b).unwrap();
        assert_eq!(ab.hop_count(), 2);
        assert_eq!(ab.target(), 2.into());
        let err = b.concat(&b).unwrap_err();
        assert!(matches!(err, PathError::ConcatMismatch { .. }));
    }

    #[test]
    fn concat_with_trivial() {
        let (g, e) = square();
        let a = Path::from_edges(&g, 0.into(), &[e[0]]).unwrap();
        let t = Path::trivial(1.into());
        assert_eq!(a.concat(&t).unwrap(), a);
        assert_eq!(t.concat(&a.reversed()).unwrap().target(), 0.into());
    }

    #[test]
    fn subpath_extraction() {
        let (g, e) = square();
        let p = Path::from_edges(&g, 0.into(), &[e[0], e[1], e[2]]).unwrap();
        let s = p.subpath(1, 2);
        assert_eq!(s.nodes(), &[NodeId::new(1), NodeId::new(2)]);
        assert_eq!(s.edges(), &[e[1]]);
        let whole = p.subpath(0, 3);
        assert_eq!(whole, p);
        let point = p.subpath(2, 2);
        assert!(point.is_trivial());
    }

    #[test]
    #[should_panic(expected = "subpath out of range")]
    fn subpath_out_of_range_panics() {
        let (g, e) = square();
        let p = Path::from_edges(&g, 0.into(), &[e[0]]).unwrap();
        let _ = p.subpath(0, 5);
    }

    #[test]
    fn reversal() {
        let (g, e) = square();
        let p = Path::from_edges(&g, 0.into(), &[e[0], e[1]]).unwrap();
        let r = p.reversed();
        assert_eq!(r.source(), 2.into());
        assert_eq!(r.target(), 0.into());
        assert_eq!(r.reversed(), p);
    }

    #[test]
    fn membership_queries() {
        let (g, e) = square();
        let p = Path::from_edges(&g, 0.into(), &[e[0], e[1]]).unwrap();
        assert!(p.contains_edge(e[0]));
        assert!(!p.contains_edge(e[3]));
        assert!(p.contains_node(1.into()));
        assert!(!p.contains_node(3.into()));
        assert_eq!(p.position_of(2.into()), Some(2));
        assert_eq!(p.position_of(3.into()), None);
    }

    #[test]
    fn cost_sums_weights() {
        let mut g = Graph::new(3);
        let e0 = g.add_edge(0, 1, 5).unwrap();
        let e1 = g.add_edge(1, 2, 7).unwrap();
        let m = CostModel::new(Metric::Weighted, 0);
        let p = Path::from_edges(&g, 0.into(), &[e0, e1]).unwrap();
        assert_eq!(p.cost(&g, &m).base, 12);
        assert_eq!(p.cost(&g, &m).hops, 2);
    }

    #[test]
    fn debug_and_display() {
        let (g, e) = square();
        let p = Path::from_edges(&g, 0.into(), &[e[0]]).unwrap();
        assert_eq!(format!("{p}"), "n0 -> n1");
        assert_eq!(format!("{p:?}"), "Path[n0 -e0- n1]");
    }
}
