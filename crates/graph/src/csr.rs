//! Compressed-sparse-row graph core and scratch-arena Dijkstra.
//!
//! The general-purpose [`Graph`] stores adjacency as `Vec<Vec<(NodeId,
//! EdgeId)>>` — one heap allocation per node — and every Dijkstra call
//! re-derives perturbed edge costs via `splitmix64` and allocates five
//! fresh working arrays. That is fine for one restoration, but the RBPC
//! provisioning phase runs *n* Dijkstras (one per source), and the eval
//! suites run thousands more. This module is the batch-friendly form of the
//! same computation:
//!
//! * [`CsrGraph`] — adjacency flattened into an `offsets` array plus one
//!   packed 32-byte record per half-edge (neighbor, edge id, and the
//!   perturbed `u128` cost of a fixed [`CostModel`] **precomputed**), so
//!   the relaxation inner loop streams one contiguous block per node with
//!   no hashing and no mixing;
//! * [`FailureMask`] — a bitset mirror of [`FailureSet`] so the masked
//!   traversal tests a bit instead of probing two ordered sets per half-edge;
//! * [`DijkstraScratch`] — a reusable arena holding one 48-byte working
//!   record per node (so a relaxation touches one cache line, not six
//!   parallel arrays) plus a heap of 16-byte node-packed keys, with
//!   epoch-stamped visited marks so resetting between runs is O(1);
//! * [`batch`] — the batched multi-source kernel ([`SptBatchScratch`],
//!   [`CsrGraph::full_tree_batch`]): structure-of-arrays scratch and an
//!   indexed 4-ary decrease-key heap for provisioning sweeps, where one
//!   scratch serves a whole batch of sources.
//!
//! Determinism: the perturbed costs make shortest paths unique (see
//! [`CostModel`]), so the tree produced by [`CsrGraph::full_tree`] is
//! **bit-identical** to [`shortest_path_tree`](crate::shortest_path_tree)
//! over the same graph, model, and failures — regardless of traversal
//! order, scratch reuse, or which thread ran it. The property test
//! `tests/csr_parallel.rs` at the repository root enforces this.

use crate::spt::{NO_EDGE, NO_NODE};
use crate::{CostModel, EdgeId, FailureSet, Graph, NodeId, Path, ShortestPathTree};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

pub mod batch;

pub use batch::SptBatchScratch;

/// A [`Graph`] + [`CostModel`] frozen into flat CSR arrays for batch
/// shortest-path computation.
///
/// Built once with [`CsrGraph::new`]; all subsequent queries are
/// allocation-free when a [`DijkstraScratch`] is reused.
///
/// ```
/// use rbpc_graph::{csr::{CsrGraph, DijkstraScratch}, CostModel, Graph, Metric};
/// # fn main() -> Result<(), rbpc_graph::GraphError> {
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 2)?;
/// g.add_edge(1, 2, 2)?;
/// g.add_edge(0, 2, 10)?;
/// let model = CostModel::new(Metric::Weighted, 0);
/// let csr = CsrGraph::new(&g, &model);
/// let mut scratch = DijkstraScratch::new(csr.node_count());
/// let spt = csr.full_tree(0.into(), &mut scratch);
/// assert_eq!(spt.base_dist(2.into()), Some(4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CsrGraph {
    n: usize,
    m: usize,
    /// `offsets[u] .. offsets[u + 1]` indexes the half-edges of node `u`.
    offsets: Vec<u32>,
    /// Packed half-edge records: one node's adjacency is one contiguous
    /// 32-bytes-per-edge block (rather than four parallel arrays), so
    /// scanning it streams a single cache-line run.
    half: Vec<HalfEdge>,
    model: CostModel,
}

/// One half-edge of the packed adjacency: precomputed perturbed and base
/// weights plus the neighbor and undirected edge id. Exactly 32 bytes.
#[derive(Debug, Clone, Copy)]
struct HalfEdge {
    /// Precomputed perturbed weight under the frozen [`CostModel`].
    weight: u128,
    /// Precomputed base (original-metric) weight.
    base: u64,
    /// Neighbor node of this half-edge.
    target: u32,
    /// Undirected edge id of this half-edge.
    edge: u32,
}

/// Low-bit mask covering every legal node id (`MAX_NODES` is a power of
/// two, so ids fit in `MAX_NODES - 1`).
const NODE_MASK: u128 = (CostModel::MAX_NODES - 1) as u128;

/// Packs a node id into the low bits of its perturbed distance, making a
/// 16-byte heap entry instead of a 32-byte `(dist, node)` pair.
///
/// The packing overwrites the low 20 perturbation bits, so pop order can
/// differ from exact-distance order only between keys equal in the top
/// 108 bits — i.e. distances within `2^20` of each other. Every edge
/// weight is at least `1 << 64` (zero base weights are rejected at
/// construction), so no path through a node popped later can improve a
/// node popped earlier: the relaxation would add `>= 2^64`, dwarfing the
/// `< 2^21` key skew. Settle *order* may therefore differ from the
/// sequential implementation, but every settled distance — and hence the
/// tree — is bit-identical.
#[inline]
fn heap_key(dist: u128, node: u32) -> u128 {
    (dist & !NODE_MASK) | node as u128
}

impl CsrGraph {
    /// Flattens `graph` under `model`, precomputing perturbed costs.
    ///
    /// Half-edges keep the insertion order of [`Graph::neighbors`], so
    /// traversal order matches the `Vec<Vec>` path exactly (not that
    /// correctness needs it — perturbed costs are unique).
    ///
    /// # Panics
    ///
    /// Panics if the graph exceeds [`CostModel::MAX_NODES`] nodes.
    pub fn new(graph: &Graph, model: &CostModel) -> Self {
        let n = graph.node_count();
        let m = graph.edge_count();
        assert!(
            n <= CostModel::MAX_NODES,
            "graphs are limited to {} nodes (padding overflow)",
            CostModel::MAX_NODES
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut half = Vec::with_capacity(2 * m);
        offsets.push(0);
        for u in graph.nodes() {
            for h in graph.neighbors(u) {
                half.push(HalfEdge {
                    weight: model.perturbed_weight(graph, h.edge),
                    base: model.base_weight(graph, h.edge),
                    target: h.to.index() as u32,
                    edge: h.edge.index() as u32,
                });
            }
            offsets.push(half.len() as u32);
        }
        CsrGraph {
            n,
            m,
            offsets,
            half,
            model: *model,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// The cost model the weights were precomputed under.
    #[inline]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Structural self-check of the CSR arrays: offsets are monotone and
    /// cover exactly `2m` half-edges, every half-edge is in range, every
    /// undirected edge id appears exactly twice with mirrored endpoints
    /// and identical weights, and every perturbed weight carries its base
    /// weight in the high 64 bits (hence is at least `2^64` — the padding
    /// discipline Theorem 3's uniqueness argument and the packed
    /// packed heap keys both rely on).
    ///
    /// O(n + m); intended for `debug_assert!` and the validation
    /// harnesses (`rbpc-eval validate`, `tests/csr_parallel.rs`).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let (n, m) = (self.n, self.m);
        if self.offsets.len() != n + 1 {
            return Err(format!(
                "offsets has length {}, expected {}",
                self.offsets.len(),
                n + 1
            ));
        }
        if self.offsets[0] != 0 {
            return Err("offsets must start at 0".to_string());
        }
        if let Some(u) = (0..n).find(|&u| self.offsets[u] > self.offsets[u + 1]) {
            return Err(format!("offsets decrease at node {u}"));
        }
        if self.offsets[n] as usize != self.half.len() || self.half.len() != 2 * m {
            return Err(format!(
                "half-edge count {} does not cover offsets end {} = 2m = {}",
                self.half.len(),
                self.offsets[n],
                2 * m
            ));
        }
        // (from, to, weight, base) per appearance of each undirected edge.
        let mut twins: Vec<Vec<(u32, u32, u128, u64)>> = vec![Vec::new(); m];
        for u in 0..n {
            let (lo, hi) = (self.offsets[u] as usize, self.offsets[u + 1] as usize);
            for he in &self.half[lo..hi] {
                if he.target as usize >= n {
                    return Err(format!(
                        "half-edge of {u} targets out-of-range {}",
                        he.target
                    ));
                }
                if he.edge as usize >= m {
                    return Err(format!(
                        "half-edge of {u} names out-of-range edge {}",
                        he.edge
                    ));
                }
                if he.base == 0 {
                    return Err(format!("edge {} has zero base weight", he.edge));
                }
                if he.weight >> 64 != he.base as u128 {
                    return Err(format!(
                        "edge {} perturbed weight does not carry its base weight \
                         in the high 64 bits (so it is not >= 2^64-padded)",
                        he.edge
                    ));
                }
                twins[he.edge as usize].push((u as u32, he.target, he.weight, he.base));
            }
        }
        for (e, t) in twins.iter().enumerate() {
            if t.len() != 2 {
                return Err(format!("edge {e} has {} half-edges, expected 2", t.len()));
            }
            let ((f1, t1, w1, b1), (f2, t2, w2, b2)) = (t[0], t[1]);
            if t1 != f2 || t2 != f1 {
                return Err(format!("edge {e} half-edges do not mirror each other"));
            }
            if w1 != w2 || b1 != b2 {
                return Err(format!("edge {e} half-edges disagree on weight"));
            }
        }
        Ok(())
    }

    /// Full consistency check of a tree against this graph (and optional
    /// mask): structure (via
    /// [`ShortestPathTree::validate_structure`]), parent edges that really
    /// exist unmasked with exactly matching distance sums, failed nodes
    /// unreachable, no live edge left relaxable (optimality), and — the
    /// perturbation discipline's signature — **no ties**: any live edge
    /// that exactly achieves a node's distance must *be* that node's
    /// parent edge, otherwise two distinct shortest paths coexist and
    /// Theorem 3's uniqueness is broken.
    ///
    /// O(n + m); intended for `debug_assert!` and the validation
    /// harnesses.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate_tree(
        &self,
        tree: &ShortestPathTree,
        mask: Option<&FailureMask>,
    ) -> Result<(), String> {
        tree.validate_structure()?;
        if tree.node_count() != self.n {
            return Err(format!(
                "tree covers {} nodes, graph has {}",
                tree.node_count(),
                self.n
            ));
        }
        if let Some(msk) = mask {
            if msk.n != self.n || msk.m != self.m {
                return Err("failure mask dimensions do not match the graph".to_string());
            }
        }
        let masked = |e: u32, v: u32| mask.is_some_and(|m| m.half_edge_masked(e, v));
        let node_dead = |v: usize| mask.is_some_and(|m| m.node_failed(NodeId::new(v)));
        let src = tree.source().index();
        if node_dead(src) {
            if let Some(v) = (0..self.n).find(|&v| tree.reachable(NodeId::new(v))) {
                return Err(format!("source {src} failed but node {v} is reachable"));
            }
            return Ok(());
        }
        if !tree.reachable(tree.source()) {
            return Err(format!("live source {src} is unreachable in its own tree"));
        }
        for u in 0..self.n {
            if node_dead(u) {
                if tree.reachable(NodeId::new(u)) {
                    return Err(format!("failed node {u} is reachable"));
                }
                continue;
            }
            if !tree.reachable(NodeId::new(u)) {
                continue;
            }
            let du = tree.dist[u];
            let (lo, hi) = (self.offsets[u] as usize, self.offsets[u + 1] as usize);
            for he in &self.half[lo..hi] {
                let v = he.target as usize;
                if masked(he.edge, he.target) {
                    continue;
                }
                if !tree.reachable(NodeId::new(v)) {
                    return Err(format!(
                        "edge {} reaches node {v} from settled {u}, yet {v} is unreachable",
                        he.edge
                    ));
                }
                let nd = du + he.weight;
                let dv = tree.dist[v];
                if nd < dv {
                    return Err(format!(
                        "edge {} from {u} improves node {v}: tree is not optimal",
                        he.edge
                    ));
                }
                if nd == dv && (tree.parent_node[v] != u as u32 || tree.parent_edge[v] != he.edge) {
                    return Err(format!(
                        "edge {} from {u} ties node {v}'s distance without being its \
                         parent edge: perturbed shortest paths are not unique",
                        he.edge
                    ));
                }
            }
        }
        // Parent edges must exist in the adjacency, unmasked, with sums
        // that match exactly (not just non-improving).
        for v in 0..self.n {
            if !tree.reachable(NodeId::new(v)) || v == src {
                continue;
            }
            let (pe, pu) = (tree.parent_edge[v], tree.parent_node[v] as usize);
            if masked(pe, v as u32) {
                return Err(format!("node {v}'s parent edge {pe} is masked"));
            }
            let (lo, hi) = (self.offsets[pu] as usize, self.offsets[pu + 1] as usize);
            let Some(he) = self.half[lo..hi]
                .iter()
                .find(|he| he.edge == pe && he.target as usize == v)
            else {
                return Err(format!(
                    "node {v}'s parent edge {pe} does not exist from parent {pu}"
                ));
            };
            if tree.dist[v] != tree.dist[pu] + he.weight
                || tree.base_dist[v] != tree.base_dist[pu] + he.base
                || tree.hops[v] != tree.hops[pu] + 1
            {
                return Err(format!(
                    "node {v}'s distances are not parent {pu}'s plus edge {pe}"
                ));
            }
        }
        Ok(())
    }

    /// Computes the full shortest-path tree from `source`, reusing
    /// `scratch`. Bit-identical to
    /// [`shortest_path_tree`](crate::shortest_path_tree) on the source
    /// graph and model.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn full_tree(&self, source: NodeId, scratch: &mut DijkstraScratch) -> ShortestPathTree {
        self.full_tree_masked(source, None, scratch)
    }

    /// [`CsrGraph::full_tree`] with an optional failure mask applied —
    /// the CSR analogue of running over a
    /// [`FailureView`](crate::FailureView).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range or `mask` was built for
    /// different graph dimensions.
    pub fn full_tree_masked(
        &self,
        source: NodeId,
        mask: Option<&FailureMask>,
        scratch: &mut DijkstraScratch,
    ) -> ShortestPathTree {
        assert!(source.index() < self.n, "source {source} out of range");
        if let Some(m) = mask {
            m.check_dims(self.n, self.m);
        }
        if mask.is_some_and(|m| m.node_failed(source)) {
            return ShortestPathTree::unreachable(source, self.n);
        }
        // Monomorphize the hot loop per mask-ness: the unmasked copy
        // compiles the predicate away entirely.
        match mask {
            Some(m) => self.tree_inner(source, scratch, |e, v| m.half_edge_masked(e, v)),
            None => self.tree_inner(source, scratch, |_, _| false),
        }
    }

    /// The full-tree hot loop, generic over the half-edge mask predicate.
    ///
    /// Runs Dijkstra entirely inside the scratch arena — one record per
    /// node, so a relaxation touches a single cache line instead of six
    /// parallel arrays — then harvests the tree with one sequential pass:
    /// each output element is written exactly once (settled value or
    /// unreachable sentinel), no sentinel prefill, no random-order
    /// settling.
    fn tree_inner<F: Fn(u32, u32) -> bool>(
        &self,
        source: NodeId,
        scratch: &mut DijkstraScratch,
        masked: F,
    ) -> ShortestPathTree {
        scratch.begin(self.n);
        // Even stamp = touched this run, odd stamp = settled this run.
        let ep = scratch.epoch;
        let ep_done = ep + 1;
        let DijkstraScratch {
            nodes,
            heap,
            settled_total,
            ..
        } = scratch;
        let s = source.index();
        nodes[s] = NodeRec {
            dist: 0,
            base: 0,
            stamp: ep,
            hops: 0,
            parent_node: NO_NODE,
            parent_edge: NO_EDGE,
        };
        heap.push(Reverse(heap_key(0, s as u32)));

        // lint:hot: the settle loop — the whole provisioning sweep lives here.
        while let Some(Reverse(key)) = heap.pop() {
            let u = (key & NODE_MASK) as usize;
            if nodes[u].stamp == ep_done {
                continue;
            }
            nodes[u].stamp = ep_done;
            *settled_total += 1;
            let (d, ub, uh) = (nodes[u].dist, nodes[u].base, nodes[u].hops);

            // lint:allow(hot-path) — `offsets` has n+1 entries, so `u + 1` is in bounds for every settled node id
            let (lo, hi) = (self.offsets[u] as usize, self.offsets[u + 1] as usize);
            for he in &self.half[lo..hi] {
                let vt = he.target;
                let rec = &mut nodes[vt as usize];
                if rec.stamp == ep_done || masked(he.edge, vt) {
                    continue;
                }
                let nd = d + he.weight;
                if rec.stamp != ep || nd < rec.dist {
                    *rec = NodeRec {
                        dist: nd,
                        base: ub + he.base,
                        stamp: ep,
                        hops: uh + 1,
                        // lint:allow(hot-path) — node ids are < n ≤ u32::MAX by CsrGraph construction; `u as u32` cannot truncate
                        parent_node: u as u32,
                        parent_edge: he.edge,
                    };
                    // lint:allow(hot-path) — the scratch heap keeps its capacity across runs; pushes are amortized alloc-free
                    heap.push(Reverse(heap_key(nd, vt)));
                }
            }
        }

        // Harvest: after the loop every touched node is settled, so the
        // odd stamp alone separates reached from unreachable.
        let n = self.n;
        let mut dist = Vec::with_capacity(n);
        let mut base_dist = Vec::with_capacity(n);
        let mut hops = Vec::with_capacity(n);
        let mut parent_edge = Vec::with_capacity(n);
        let mut parent_node = Vec::with_capacity(n);
        for rec in &nodes[..n] {
            if rec.stamp == ep_done {
                dist.push(rec.dist);
                base_dist.push(rec.base);
                hops.push(rec.hops);
                parent_edge.push(rec.parent_edge);
                parent_node.push(rec.parent_node);
            } else {
                dist.push(u128::MAX);
                base_dist.push(u64::MAX);
                hops.push(u32::MAX);
                parent_edge.push(NO_EDGE);
                parent_node.push(NO_NODE);
            }
        }
        ShortestPathTree::from_arrays(source, dist, base_dist, hops, parent_edge, parent_node)
    }

    /// Single-pair shortest path with early exit once `t` settles, reusing
    /// `scratch`. Returns the same unique path as
    /// [`shortest_path`](crate::shortest_path), or `None` if disconnected.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn point_to_point(
        &self,
        s: NodeId,
        t: NodeId,
        mask: Option<&FailureMask>,
        scratch: &mut DijkstraScratch,
    ) -> Option<Path> {
        assert!(s.index() < self.n, "source {s} out of range");
        assert!(t.index() < self.n, "target {t} out of range");
        if let Some(m) = mask {
            m.check_dims(self.n, self.m);
            if m.node_failed(s) || m.node_failed(t) {
                return None;
            }
        }
        if s == t {
            return Some(Path::trivial(s));
        }
        match mask {
            Some(m) => self.point_to_point_inner(s, t, scratch, |e, v| m.half_edge_masked(e, v)),
            None => self.point_to_point_inner(s, t, scratch, |_, _| false),
        }
    }

    /// The point-to-point hot loop, generic over the half-edge mask
    /// predicate (see [`CsrGraph::tree_into`]).
    fn point_to_point_inner<F: Fn(u32, u32) -> bool>(
        &self,
        s: NodeId,
        t: NodeId,
        scratch: &mut DijkstraScratch,
        masked: F,
    ) -> Option<Path> {
        scratch.begin(self.n);
        let ep = scratch.epoch;
        let ep_done = ep + 1;
        let DijkstraScratch {
            nodes: recs,
            heap,
            settled_total,
            ..
        } = scratch;
        let si = s.index();
        recs[si] = NodeRec {
            dist: 0,
            base: 0,
            stamp: ep,
            hops: 0,
            parent_node: NO_NODE,
            parent_edge: NO_EDGE,
        };
        heap.push(Reverse(heap_key(0, si as u32)));

        // lint:hot: the settle loop. The cold target-reached exit drops out
        // of the region so path reconstruction can allocate freely.
        let mut found = false;
        while let Some(Reverse(key)) = heap.pop() {
            let u = (key & NODE_MASK) as usize;
            if recs[u].stamp == ep_done {
                continue;
            }
            let d = recs[u].dist;
            recs[u].stamp = ep_done;
            *settled_total += 1;
            if u == t.index() {
                found = true;
                heap.clear();
                break;
            }
            // lint:allow(hot-path) — `offsets` has n+1 entries, so `u + 1` is in bounds for every settled node id
            let (lo, hi) = (self.offsets[u] as usize, self.offsets[u + 1] as usize);
            for he in &self.half[lo..hi] {
                let vt = he.target;
                let rec = &mut recs[vt as usize];
                if rec.stamp == ep_done || masked(he.edge, vt) {
                    continue;
                }
                let nd = d + he.weight;
                if rec.stamp != ep || nd < rec.dist {
                    rec.dist = nd;
                    rec.stamp = ep;
                    // lint:allow(hot-path) — node ids are < n ≤ u32::MAX by CsrGraph construction; `u as u32` cannot truncate
                    rec.parent_node = u as u32;
                    rec.parent_edge = he.edge;
                    // lint:allow(hot-path) — the scratch heap keeps its capacity across runs; pushes are amortized alloc-free
                    heap.push(Reverse(heap_key(nd, vt)));
                }
            }
        }
        if !found {
            return None;
        }

        // Walk the parent chain back from `t` (cold: runs once per query).
        let mut nodes = vec![t];
        let mut edges = Vec::new();
        let mut at = t.index();
        while recs[at].parent_node != NO_NODE {
            edges.push(EdgeId::new(recs[at].parent_edge as usize));
            let pn = recs[at].parent_node as usize;
            nodes.push(NodeId::new(pn));
            at = pn;
        }
        nodes.reverse();
        edges.reverse();
        Some(Path::from_parts_unchecked(nodes, edges))
    }
}

/// Bitset mirror of a [`FailureSet`] sized to one [`CsrGraph`]: the masked
/// traversal tests one bit per half-edge instead of probing hash sets.
///
/// A failed node masks itself and (by the endpoint check in the traversal)
/// every incident half-edge, matching [`FailureView`](crate::FailureView)
/// semantics.
#[derive(Debug, Clone)]
pub struct FailureMask {
    n: usize,
    m: usize,
    edges: Vec<u64>,
    nodes: Vec<u64>,
}

#[inline]
fn bit_get(words: &[u64], i: u32) -> bool {
    words[(i >> 6) as usize] & (1u64 << (i & 63)) != 0
}

#[inline]
fn bit_set(words: &mut [u64], i: u32) {
    words[(i >> 6) as usize] |= 1u64 << (i & 63);
}

impl FailureMask {
    /// An all-clear mask for a graph with `nodes` nodes and `edges` edges.
    pub fn new(nodes: usize, edges: usize) -> Self {
        FailureMask {
            n: nodes,
            m: edges,
            edges: vec![0; edges.div_ceil(64)],
            nodes: vec![0; nodes.div_ceil(64)],
        }
    }

    /// Builds the mask equivalent of `set` for `csr`'s dimensions.
    pub fn from_set(csr: &CsrGraph, set: &FailureSet) -> Self {
        let mut mask = FailureMask::new(csr.node_count(), csr.edge_count());
        for e in set.failed_edges() {
            mask.fail_edge(e);
        }
        for v in set.failed_nodes() {
            mask.fail_node(v);
        }
        mask
    }

    /// Marks an edge as failed.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn fail_edge(&mut self, e: EdgeId) {
        assert!(e.index() < self.m, "edge {e} out of range");
        bit_set(&mut self.edges, e.index() as u32);
    }

    /// Marks a node (and implicitly its incident edges) as failed.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn fail_node(&mut self, v: NodeId) {
        assert!(v.index() < self.n, "node {v} out of range");
        bit_set(&mut self.nodes, v.index() as u32);
    }

    /// Whether this node is failed.
    #[inline]
    pub fn node_failed(&self, v: NodeId) -> bool {
        bit_get(&self.nodes, v.index() as u32)
    }

    /// Whether this edge is explicitly failed (node failures not considered).
    #[inline]
    pub fn edge_failed(&self, e: EdgeId) -> bool {
        bit_get(&self.edges, e.index() as u32)
    }

    /// Traversal predicate: half-edge `edge → to` is unusable. The
    /// traversing endpoint is known alive (Dijkstra never enters a failed
    /// node), so checking `to` covers both endpoints.
    #[inline]
    fn half_edge_masked(&self, edge: u32, to: u32) -> bool {
        bit_get(&self.edges, edge) || bit_get(&self.nodes, to)
    }

    fn check_dims(&self, n: usize, m: usize) {
        assert!(
            self.n == n && self.m == m,
            "failure mask built for {}x{} applied to a {n}x{m} graph",
            self.n,
            self.m
        );
    }
}

/// Per-node Dijkstra working record. Everything a relaxation reads or
/// writes for node `v` lives in this one 48-byte struct, so visiting a
/// node costs roughly one cache line instead of six parallel-array
/// accesses (the array-of-structs layout is what makes the CSR engine
/// faster than the general path, which is memory-bound on exactly those
/// scattered accesses).
#[derive(Debug, Clone, Copy)]
struct NodeRec {
    dist: u128,
    base: u64,
    /// Merged epoch stamp: `== epoch` ⇔ touched (`dist` valid this run),
    /// `== epoch + 1` ⇔ settled this run, anything else stale.
    stamp: u32,
    hops: u32,
    parent_node: u32,
    parent_edge: u32,
}

const EMPTY_REC: NodeRec = NodeRec {
    dist: 0,
    base: 0,
    stamp: 0,
    hops: 0,
    parent_node: 0,
    parent_edge: 0,
};

/// Reusable Dijkstra working memory: one record per node plus the heap,
/// with epoch-stamped visited marks, so a fresh run only clears the heap
/// and bumps an epoch — O(1) — instead of refilling O(n) arrays.
///
/// One scratch serves any number of runs over graphs up to its capacity
/// (it grows on demand). Not `Sync`: use one per thread (see
/// [`par_all_sources`](crate::par::par_all_sources)).
#[derive(Debug, Clone)]
pub struct DijkstraScratch {
    /// Current run stamp, always even; steps by 2 per run.
    epoch: u32,
    nodes: Vec<NodeRec>,
    heap: BinaryHeap<Reverse<u128>>,
    runs: u64,
    settled_total: u64,
}

impl DijkstraScratch {
    /// A scratch arena with capacity for `n`-node graphs (grows on demand).
    ///
    /// The heap is pre-reserved from the node count — the lazy-deletion
    /// heap holds one entry per relaxation (typically a small multiple of
    /// `n`), and starting from zero capacity used to force a reallocation
    /// cascade inside the first run of every fresh scratch.
    pub fn new(n: usize) -> Self {
        DijkstraScratch {
            epoch: 0,
            nodes: vec![EMPTY_REC; n],
            heap: BinaryHeap::with_capacity(n),
            runs: 0,
            settled_total: 0,
        }
    }

    /// Prepares for a run over an `n`-node graph: bumps the epoch (handling
    /// wrap-around), grows buffers if needed, clears the heap. The heap's
    /// capacity is carried across runs (and grown alongside `nodes`), so a
    /// reused scratch never reallocates mid-sweep.
    fn begin(&mut self, n: usize) {
        if self.nodes.len() < n {
            self.nodes.resize(n, EMPTY_REC);
        }
        self.epoch = self.epoch.wrapping_add(2);
        if self.epoch == 0 {
            // u32 wrapped after ~2 billion runs: old stamps could collide.
            self.nodes.iter_mut().for_each(|r| r.stamp = 0);
            self.epoch = 2;
        }
        self.heap.clear();
        if self.heap.capacity() < n {
            self.heap.reserve(n - self.heap.len());
        }
        self.runs += 1;
    }

    /// Number of runs served so far (reuses = `runs() - 1` for the first
    /// allocation).
    #[inline]
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Total nodes settled across all runs (perf accounting).
    #[inline]
    pub fn settled_total(&self) -> u64 {
        self.settled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{shortest_path, shortest_path_tree, DetRng, Metric};

    fn sample() -> Graph {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 10).unwrap();
        g.add_edge(0, 2, 3).unwrap();
        g.add_edge(2, 1, 4).unwrap();
        g.add_edge(1, 3, 2).unwrap();
        g.add_edge(2, 3, 8).unwrap();
        g.add_edge(3, 4, 7).unwrap();
        g.add_edge(2, 4, 20).unwrap();
        g
    }

    fn random_graph(n: usize, m: usize, seed: u64) -> Graph {
        let mut g = Graph::new(n);
        let mut rng = DetRng::seed_from_u64(seed);
        while g.edge_count() < m {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                let w = rng.gen_range(1..=50u32);
                g.add_edge(a, b, w).unwrap();
            }
        }
        g
    }

    #[test]
    fn full_tree_matches_sequential() {
        let g = sample();
        let model = CostModel::new(Metric::Weighted, 17);
        let csr = CsrGraph::new(&g, &model);
        let mut scratch = DijkstraScratch::new(g.node_count());
        for s in g.nodes() {
            let want = shortest_path_tree(&g, &model, s);
            let got = csr.full_tree(s, &mut scratch);
            assert_eq!(got, want, "tree from {s}");
        }
        assert_eq!(scratch.runs(), 5);
        assert!(scratch.settled_total() >= 25);
    }

    #[test]
    fn full_tree_matches_sequential_random_reused_scratch() {
        let model = CostModel::new(Metric::Unweighted, 3);
        let mut scratch = DijkstraScratch::new(0);
        for seed in 0..4u64 {
            let g = random_graph(40, 90, seed);
            let csr = CsrGraph::new(&g, &model);
            for s in g.nodes() {
                let want = shortest_path_tree(&g, &model, s);
                let got = csr.full_tree(s, &mut scratch);
                assert_eq!(got, want, "seed {seed} source {s}");
            }
        }
    }

    #[test]
    fn masked_tree_matches_failure_view() {
        let g = random_graph(30, 70, 9);
        let model = CostModel::new(Metric::Weighted, 5);
        let csr = CsrGraph::new(&g, &model);
        let mut scratch = DijkstraScratch::new(g.node_count());
        let mut rng = DetRng::seed_from_u64(42);
        for _ in 0..10 {
            let mut set = FailureSet::new();
            for _ in 0..3 {
                set.fail_edge(EdgeId::new(rng.gen_range(0..g.edge_count())));
            }
            set.fail_node(NodeId::new(rng.gen_range(0..g.node_count())));
            let mask = FailureMask::from_set(&csr, &set);
            let view = set.view(&g);
            for s in g.nodes() {
                let want = shortest_path_tree(&view, &model, s);
                let got = csr.full_tree_masked(s, Some(&mask), &mut scratch);
                assert_eq!(got, want, "masked tree from {s}");
            }
        }
    }

    #[test]
    fn failed_source_is_all_unreachable() {
        let g = sample();
        let model = CostModel::new(Metric::Weighted, 1);
        let csr = CsrGraph::new(&g, &model);
        let mut mask = FailureMask::new(csr.node_count(), csr.edge_count());
        mask.fail_node(0.into());
        let mut scratch = DijkstraScratch::new(csr.node_count());
        let t = csr.full_tree_masked(0.into(), Some(&mask), &mut scratch);
        for v in g.nodes() {
            assert!(!t.reachable(v));
        }
        assert_eq!(
            csr.point_to_point(0.into(), 4.into(), Some(&mask), &mut scratch),
            None
        );
        assert_eq!(
            csr.point_to_point(4.into(), 0.into(), Some(&mask), &mut scratch),
            None
        );
    }

    #[test]
    fn point_to_point_matches_sequential() {
        let g = random_graph(30, 70, 11);
        let model = CostModel::new(Metric::Weighted, 23);
        let csr = CsrGraph::new(&g, &model);
        let mut scratch = DijkstraScratch::new(g.node_count());
        for s in g.nodes() {
            for t in g.nodes() {
                let want = shortest_path(&g, &model, s, t);
                let got = csr.point_to_point(s, t, None, &mut scratch);
                assert_eq!(got, want, "{s} -> {t}");
            }
        }
    }

    #[test]
    fn point_to_point_trivial_and_masked() {
        let g = sample();
        let model = CostModel::new(Metric::Weighted, 17);
        let csr = CsrGraph::new(&g, &model);
        let mut scratch = DijkstraScratch::new(g.node_count());
        let p = csr
            .point_to_point(2.into(), 2.into(), None, &mut scratch)
            .unwrap();
        assert!(p.is_trivial());
        // Fail 0-2; path to 2 must go 0-1-2 = 14, as in the dijkstra tests.
        let e = g.find_edge(0.into(), 2.into()).unwrap();
        let set = FailureSet::of_edge(e);
        let mask = FailureMask::from_set(&csr, &set);
        let p = csr
            .point_to_point(0.into(), 2.into(), Some(&mask), &mut scratch)
            .unwrap();
        assert_eq!(p.cost(&g, &model).base, 14);
        assert!(!p.contains_edge(e));
    }

    #[test]
    fn mask_mirrors_failure_set() {
        let g = sample();
        let model = CostModel::new(Metric::Weighted, 17);
        let csr = CsrGraph::new(&g, &model);
        let mut set = FailureSet::new();
        set.fail_edge(EdgeId::new(3));
        set.fail_node(NodeId::new(4));
        let mask = FailureMask::from_set(&csr, &set);
        for e in g.edge_ids() {
            assert_eq!(mask.edge_failed(e), set.edge_failed(e), "edge {e}");
        }
        for v in g.nodes() {
            assert_eq!(mask.node_failed(v), set.node_failed(v), "node {v}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_panics() {
        let g = sample();
        let csr = CsrGraph::new(&g, &CostModel::new(Metric::Weighted, 0));
        let mut scratch = DijkstraScratch::new(csr.node_count());
        let _ = csr.full_tree(99.into(), &mut scratch);
    }

    #[test]
    #[should_panic(expected = "applied to a")]
    fn wrong_dims_mask_panics() {
        let g = sample();
        let csr = CsrGraph::new(&g, &CostModel::new(Metric::Weighted, 0));
        let mask = FailureMask::new(2, 1);
        let mut scratch = DijkstraScratch::new(csr.node_count());
        let _ = csr.full_tree_masked(0.into(), Some(&mask), &mut scratch);
    }

    #[test]
    fn validate_accepts_real_graphs_and_trees() {
        let g = random_graph(30, 70, 5);
        let model = CostModel::new(Metric::Weighted, 13);
        let csr = CsrGraph::new(&g, &model);
        assert_eq!(csr.validate(), Ok(()));
        let mut scratch = DijkstraScratch::new(g.node_count());
        let mut set = FailureSet::new();
        set.fail_edge(EdgeId::new(4));
        set.fail_node(NodeId::new(7));
        let mask = FailureMask::from_set(&csr, &set);
        for s in g.nodes() {
            let t = csr.full_tree(s, &mut scratch);
            assert_eq!(csr.validate_tree(&t, None), Ok(()), "unmasked from {s}");
            let tm = csr.full_tree_masked(s, Some(&mask), &mut scratch);
            assert_eq!(
                csr.validate_tree(&tm, Some(&mask)),
                Ok(()),
                "masked from {s}"
            );
        }
    }

    #[test]
    fn validate_rejects_corrupted_graph() {
        let g = sample();
        let model = CostModel::new(Metric::Weighted, 17);
        let mut csr = CsrGraph::new(&g, &model);
        // Strip the base weight out of one perturbed weight: no longer
        // 2^64-padded.
        csr.half[0].weight &= (1u128 << 64) - 1;
        assert!(csr.validate().unwrap_err().contains("high 64 bits"));
        let mut csr = CsrGraph::new(&g, &model);
        csr.half[0].target = 99;
        assert!(csr.validate().unwrap_err().contains("out-of-range"));
        let mut csr = CsrGraph::new(&g, &model);
        csr.offsets[1] = csr.offsets[2] + 1;
        assert!(csr.validate().is_err());
    }

    #[test]
    fn validate_tree_rejects_tampering() {
        let g = sample();
        let model = CostModel::new(Metric::Weighted, 17);
        let csr = CsrGraph::new(&g, &model);
        let mut scratch = DijkstraScratch::new(g.node_count());
        let good = csr.full_tree(0.into(), &mut scratch);

        // An inflated distance leaves a relaxable edge (not optimal).
        let mut t = good.clone();
        t.dist[4] += 1u128 << 64;
        t.base_dist[4] += 1;
        assert!(csr.validate_tree(&t, None).is_err());

        // Rerouting a node to a non-tree parent breaks the distance sum.
        let mut t = good.clone();
        t.parent_node[4] = 2;
        t.parent_edge[4] = 6; // edge 2-4 exists but is not on the tree path
        assert!(csr.validate_tree(&t, None).is_err());

        // A structural hole: reachable node whose parent link is cleared.
        let mut t = good.clone();
        t.parent_edge[3] = NO_EDGE;
        t.parent_node[3] = NO_NODE;
        assert!(t.validate_structure().is_err());
        assert!(csr.validate_tree(&t, None).is_err());

        // A masked tree must not use the masked edge.
        let mut set = FailureSet::new();
        set.fail_edge(EdgeId::new(1)); // 0-2
        let mask = FailureMask::from_set(&csr, &set);
        assert!(csr.validate_tree(&good, Some(&mask)).is_err());
        let masked = csr.full_tree_masked(0.into(), Some(&mask), &mut scratch);
        assert_eq!(csr.validate_tree(&masked, Some(&mask)), Ok(()));
    }

    #[test]
    fn scalar_heap_is_preallocated_and_capacity_is_stable() {
        let g = random_graph(80, 220, 13);
        let model = CostModel::new(Metric::Weighted, 11);
        let csr = CsrGraph::new(&g, &model);
        let mut scratch = DijkstraScratch::new(csr.node_count());
        assert!(
            scratch.heap.capacity() >= csr.node_count(),
            "heap must be reserved from the node count, not empty"
        );
        // Warm one full sweep (the lazy heap can outgrow n via duplicate
        // entries), then assert an identical sweep reuses that capacity.
        for s in g.nodes() {
            let _ = csr.full_tree(s, &mut scratch);
        }
        let cap = scratch.heap.capacity();
        for s in g.nodes() {
            let _ = csr.full_tree(s, &mut scratch);
        }
        assert_eq!(
            scratch.heap.capacity(),
            cap,
            "reused scratch must not reallocate mid-sweep"
        );
    }

    #[test]
    fn epoch_wraparound_resets_stamps() {
        let g = sample();
        let model = CostModel::new(Metric::Weighted, 17);
        let csr = CsrGraph::new(&g, &model);
        let mut scratch = DijkstraScratch::new(csr.node_count());
        // Force the epoch to the wrap boundary and verify runs stay correct.
        scratch.epoch = u32::MAX - 1;
        let want = shortest_path_tree(&g, &model, 0.into());
        for _ in 0..4 {
            let got = csr.full_tree(0.into(), &mut scratch);
            assert_eq!(got, want);
        }
        assert!(scratch.epoch >= 1);
    }
}
