//! The undirected weighted multigraph.

use crate::{EdgeId, GraphError, NodeId};

/// One stored (undirected) edge: endpoints and an OSPF-style positive weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeRecord {
    /// First endpoint (the `u` passed to [`Graph::add_edge`]).
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
    /// Strictly positive link weight (OSPF cost). Unweighted experiments
    /// ignore this and charge 1 per hop — see [`Metric`](crate::Metric).
    pub weight: u32,
}

impl EdgeRecord {
    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, from: NodeId) -> NodeId {
        if from == self.u {
            self.v
        } else {
            debug_assert_eq!(from, self.v, "node is not an endpoint of this edge");
            self.u
        }
    }

    /// Returns `true` if `n` is one of the two endpoints.
    #[inline]
    pub fn touches(&self, n: NodeId) -> bool {
        self.u == n || self.v == n
    }
}

/// An edge as seen from one of its endpoints: the neighbor it leads to and
/// the edge id (distinct for parallel edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HalfEdge {
    /// The neighbor this half-edge leads to.
    pub to: NodeId,
    /// The underlying undirected edge.
    pub edge: EdgeId,
}

/// Degree statistics of a graph, as reported in the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree over all nodes.
    pub min: usize,
    /// Maximum degree over all nodes.
    pub max: usize,
    /// Average degree (`2m / n`).
    pub avg: f64,
}

/// An undirected, weighted multigraph over dense node indices.
///
/// * Parallel edges are allowed (each gets its own [`EdgeId`]); self-loops
///   are rejected.
/// * Weights are strictly positive `u32` values, as in OSPF configurations.
/// * The node set is fixed at construction; edges are appended.
///
/// ```
/// use rbpc_graph::Graph;
/// # fn main() -> Result<(), rbpc_graph::GraphError> {
/// let mut g = Graph::new(3);
/// let e0 = g.add_edge(0, 1, 10)?;
/// let e1 = g.add_edge(1, 2, 20)?;
/// let e2 = g.add_edge(0, 1, 10)?; // parallel edge, distinct id
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 3);
/// assert_ne!(e0, e2);
/// assert_eq!(g.degree(1.into()), 3);
/// # let _ = e1;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Graph {
    edges: Vec<EdgeRecord>,
    adj: Vec<Vec<(NodeId, EdgeId)>>,
}

impl Graph {
    /// Creates a graph with `node_count` isolated nodes and no edges.
    pub fn new(node_count: usize) -> Self {
        Graph {
            edges: Vec::new(),
            adj: vec![Vec::new(); node_count],
        }
    }

    /// Creates a graph with `node_count` nodes, pre-allocating for
    /// `edge_capacity` edges.
    pub fn with_capacity(node_count: usize, edge_capacity: usize) -> Self {
        let mut g = Graph::new(node_count);
        g.edges.reserve(edge_capacity);
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges (parallel edges counted individually).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds an undirected edge `u — v` with the given strictly positive
    /// weight and returns its id.
    ///
    /// # Errors
    ///
    /// * [`GraphError::SelfLoop`] if `u == v`;
    /// * [`GraphError::NodeOutOfRange`] if an endpoint is out of range;
    /// * [`GraphError::ZeroWeight`] if `weight == 0`.
    pub fn add_edge(
        &mut self,
        u: impl Into<NodeId>,
        v: impl Into<NodeId>,
        weight: u32,
    ) -> Result<EdgeId, GraphError> {
        let (u, v) = (u.into(), v.into());
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if weight == 0 {
            return Err(GraphError::ZeroWeight);
        }
        let id = EdgeId::new(self.edges.len());
        self.edges.push(EdgeRecord { u, v, weight });
        self.adj[u.index()].push((v, id));
        self.adj[v.index()].push((u, id));
        Ok(id)
    }

    /// Adds an edge of weight 1. Convenience for unweighted topologies.
    ///
    /// # Errors
    ///
    /// Same as [`Graph::add_edge`].
    pub fn add_unit_edge(
        &mut self,
        u: impl Into<NodeId>,
        v: impl Into<NodeId>,
    ) -> Result<EdgeId, GraphError> {
        self.add_edge(u, v, 1)
    }

    /// Appends a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.adj.len());
        self.adj.push(Vec::new());
        id
    }

    /// Looks up the record of an edge.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &EdgeRecord {
        &self.edges[e.index()]
    }

    /// Looks up an edge record, returning `None` when out of range.
    pub fn edge_checked(&self, e: EdgeId) -> Option<&EdgeRecord> {
        self.edges.get(e.index())
    }

    /// The two endpoints of an edge, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let r = self.edge(e);
        (r.u, r.v)
    }

    /// The stored weight of an edge.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> u32 {
        self.edge(e).weight
    }

    /// Iterates over the half-edges incident to `u` (neighbor + edge id).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = HalfEdge> + '_ {
        self.adj[u.index()]
            .iter()
            .map(|&(to, edge)| HalfEdge { to, edge })
    }

    /// Raw adjacency slice of `u`, used by iterator internals.
    #[inline]
    pub(crate) fn adjacency_slice(&self, u: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[u.index()]
    }

    /// The degree of node `u` (parallel edges counted individually).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u.index()].len()
    }

    /// Iterates over all node ids, `n0, n1, …`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterates over all edge ids in insertion order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edge_count()).map(EdgeId::new)
    }

    /// Iterates over `(EdgeId, &EdgeRecord)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &EdgeRecord)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, r)| (EdgeId::new(i), r))
    }

    /// Finds an edge between `u` and `v` (any parallel one), if present.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.adj
            .get(u.index())?
            .iter()
            .find(|&&(to, _)| to == v)
            .map(|&(_, e)| e)
    }

    /// All parallel edges between `u` and `v`.
    pub fn edges_between(&self, u: NodeId, v: NodeId) -> Vec<EdgeId> {
        match self.adj.get(u.index()) {
            Some(list) => list
                .iter()
                .filter(|&&(to, _)| to == v)
                .map(|&(_, e)| e)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Degree statistics of the graph (Table 1 of the paper).
    ///
    /// Returns `None` for the empty graph.
    pub fn degree_stats(&self) -> Option<DegreeStats> {
        if self.is_empty() {
            return None;
        }
        let (min, max) = self
            .adj
            .iter()
            .map(Vec::len)
            .fold((usize::MAX, 0), |(lo, hi), d| (lo.min(d), hi.max(d)));
        let avg = 2.0 * self.edge_count() as f64 / self.node_count() as f64;
        Some(DegreeStats { min, max, avg })
    }

    /// Validates that `n` is a node of this graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] when it is not.
    pub fn check_node(&self, n: NodeId) -> Result<(), GraphError> {
        if n.index() < self.node_count() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: n,
                node_count: self.node_count(),
            })
        }
    }

    /// Validates that `e` is an edge of this graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfRange`] when it is not.
    pub fn check_edge(&self, e: EdgeId) -> Result<(), GraphError> {
        if e.index() < self.edge_count() {
            Ok(())
        } else {
            Err(GraphError::EdgeOutOfRange {
                edge: e,
                edge_count: self.edge_count(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 2).unwrap();
        g.add_edge(2, 0, 3).unwrap();
        g
    }

    #[test]
    fn construction_counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(!g.is_empty());
        assert!(Graph::new(0).is_empty());
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        assert_eq!(
            g.add_edge(1, 1, 1),
            Err(GraphError::SelfLoop {
                node: NodeId::new(1)
            })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Graph::new(2);
        assert!(matches!(
            g.add_edge(0, 5, 1),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(g.check_edge(EdgeId::new(0)).is_err());
    }

    #[test]
    fn rejects_zero_weight() {
        let mut g = Graph::new(2);
        assert_eq!(g.add_edge(0, 1, 0), Err(GraphError::ZeroWeight));
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let mut g = Graph::new(2);
        let a = g.add_edge(0, 1, 1).unwrap();
        let b = g.add_edge(0, 1, 5).unwrap();
        assert_ne!(a, b);
        assert_eq!(g.degree(0.into()), 2);
        assert_eq!(g.edges_between(0.into(), 1.into()), vec![a, b]);
        assert_eq!(g.weight(a), 1);
        assert_eq!(g.weight(b), 5);
    }

    #[test]
    fn neighbors_and_degree() {
        let g = triangle();
        let n: Vec<_> = g.neighbors(0.into()).map(|h| h.to).collect();
        assert_eq!(n, vec![NodeId::new(1), NodeId::new(2)]);
        assert_eq!(g.degree(0.into()), 2);
    }

    #[test]
    fn endpoints_and_other() {
        let g = triangle();
        let e = g.find_edge(1.into(), 2.into()).unwrap();
        assert_eq!(g.endpoints(e), (NodeId::new(1), NodeId::new(2)));
        assert_eq!(g.edge(e).other(1.into()), NodeId::new(2));
        assert_eq!(g.edge(e).other(2.into()), NodeId::new(1));
        assert!(g.edge(e).touches(1.into()));
        assert!(!g.edge(e).touches(0.into()));
    }

    #[test]
    fn find_edge_missing() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1).unwrap();
        assert_eq!(g.find_edge(2.into(), 3.into()), None);
        assert!(g.edges_between(2.into(), 3.into()).is_empty());
    }

    #[test]
    fn degree_stats_table1_style() {
        let g = triangle();
        let s = g.degree_stats().unwrap();
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert!((s.avg - 2.0).abs() < 1e-12);
        assert!(Graph::new(0).degree_stats().is_none());
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = triangle();
        let v = g.add_node();
        assert_eq!(v.index(), 3);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.degree(v), 0);
        g.add_edge(v, 0, 9).unwrap();
        assert_eq!(g.degree(v), 1);
    }

    #[test]
    fn iterators_cover_everything() {
        let g = triangle();
        assert_eq!(g.nodes().count(), 3);
        assert_eq!(g.edge_ids().count(), 3);
        let total_weight: u32 = g.edges().map(|(_, r)| r.weight).sum();
        assert_eq!(total_weight, 6);
    }

    #[test]
    fn edge_checked_bounds() {
        let g = triangle();
        assert!(g.edge_checked(EdgeId::new(2)).is_some());
        assert!(g.edge_checked(EdgeId::new(3)).is_none());
    }
}
