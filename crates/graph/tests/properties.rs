//! Property-based tests for the graph substrate.

// Requires the external `proptest` crate: compiled only with `--features proptest`
// (offline builds ship without it).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use rbpc_graph::{
    bfs_distances, count_shortest_paths, distance, shortest_path, shortest_path_tree, CostModel,
    FailureSet, Graph, Metric, NodeId,
};

/// Strategy: a connected-ish random multigraph with 2..=24 nodes.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..=24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, 1u32..=20), 1..=3 * n);
        edges.prop_map(move |list| {
            let mut g = Graph::new(n);
            // A deterministic spine keeps most generated graphs connected,
            // which makes the reachability-dependent properties bite.
            for i in 0..n - 1 {
                g.add_edge(i, i + 1, 7).unwrap();
            }
            for (a, b, w) in list {
                if a != b {
                    g.add_edge(a, b, w).unwrap();
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Distances are symmetric in an undirected graph.
    #[test]
    fn distance_symmetry(g in arb_graph(), seed in 0u64..1000) {
        let m = CostModel::new(Metric::Weighted, seed);
        let n = g.node_count();
        for s in 0..n.min(5) {
            for t in 0..n.min(5) {
                let st = distance(&g, &m, s.into(), t.into()).map(|c| c.base);
                let ts = distance(&g, &m, t.into(), s.into()).map(|c| c.base);
                prop_assert_eq!(st, ts);
            }
        }
    }

    /// Triangle inequality holds for base distances.
    #[test]
    fn triangle_inequality(g in arb_graph(), seed in 0u64..1000) {
        let m = CostModel::new(Metric::Weighted, seed);
        let t0 = shortest_path_tree(&g, &m, 0.into());
        let t1 = shortest_path_tree(&g, &m, NodeId::new(g.node_count() - 1));
        for v in g.nodes() {
            if let (Some(a), Some(b), Some(direct)) = (
                t0.base_dist(v),
                t1.base_dist(v),
                t0.base_dist(t1.source()),
            ) {
                prop_assert!(direct <= a + b);
            }
        }
    }

    /// Under the unweighted metric, Dijkstra's hop distances equal BFS.
    #[test]
    fn unweighted_equals_bfs(g in arb_graph(), seed in 0u64..1000) {
        let m = CostModel::new(Metric::Unweighted, seed);
        let t = shortest_path_tree(&g, &m, 0.into());
        let bfs = bfs_distances(&g, 0.into());
        for v in g.nodes() {
            prop_assert_eq!(t.base_dist(v), bfs[v.index()].map(u64::from));
        }
    }

    /// The tie-broken shortest path is unique: forward and reverse queries
    /// return the same path (reversed), and the tree agrees with the
    /// point-to-point query.
    #[test]
    fn canonical_paths_agree(g in arb_graph(), seed in 0u64..1000) {
        let m = CostModel::new(Metric::Weighted, seed);
        let n = g.node_count();
        let t = NodeId::new(n - 1);
        let tree = shortest_path_tree(&g, &m, 0.into());
        if let Some(p) = shortest_path(&g, &m, 0.into(), t) {
            prop_assert_eq!(&p, &tree.path_to(t).unwrap());
            let back = shortest_path(&g, &m, t, 0.into()).unwrap();
            prop_assert_eq!(p, back.reversed());
        }
    }

    /// Subpath optimality under the perturbed metric: every subpath of a
    /// canonical shortest path is itself the canonical shortest path of its
    /// endpoints. (This is what greedy RBPC decomposition relies on.)
    #[test]
    fn subpath_optimality(g in arb_graph(), seed in 0u64..1000) {
        let m = CostModel::new(Metric::Weighted, seed);
        let n = g.node_count();
        let tree = shortest_path_tree(&g, &m, 0.into());
        if let Some(p) = tree.path_to(NodeId::new(n - 1)) {
            let len = p.nodes().len();
            for i in 0..len.min(4) {
                for j in i..len {
                    let sub = p.subpath(i, j);
                    let canonical =
                        shortest_path(&g, &m, sub.source(), sub.target()).unwrap();
                    prop_assert_eq!(sub, canonical);
                }
            }
        }
    }

    /// Failing elements never shortens any distance, and restoring them
    /// returns to baseline.
    #[test]
    fn failures_monotone(g in arb_graph(), seed in 0u64..1000, kill in 0usize..6) {
        let m = CostModel::new(Metric::Weighted, seed);
        let t = NodeId::new(g.node_count() - 1);
        let before = distance(&g, &m, 0.into(), t).map(|c| c.base);
        let mut f = FailureSet::new();
        for e in g.edge_ids().take(kill) {
            f.fail_edge(e);
        }
        let view = f.view(&g);
        let after = distance(&view, &m, 0.into(), t).map(|c| c.base);
        match (before, after) {
            (None, Some(_)) => prop_assert!(false, "failure created connectivity"),
            (Some(b), Some(a)) => prop_assert!(a >= b),
            _ => {}
        }
    }

    /// Shortest-path counts are positive exactly on reachable nodes.
    #[test]
    fn counts_match_reachability(g in arb_graph()) {
        let counts = count_shortest_paths(&g, Metric::Weighted, 0.into());
        let bfs = bfs_distances(&g, 0.into());
        for v in g.nodes() {
            prop_assert_eq!(counts[v.index()] > 0, bfs[v.index()].is_some());
        }
    }

    /// The returned path is a valid walk whose cost matches the reported
    /// distance.
    #[test]
    fn path_cost_consistency(g in arb_graph(), seed in 0u64..1000) {
        let m = CostModel::new(Metric::Weighted, seed);
        let t = NodeId::new(g.node_count() / 2);
        if let Some(p) = shortest_path(&g, &m, 0.into(), t) {
            prop_assert!(p.is_simple());
            prop_assert_eq!(p.source(), 0.into());
            prop_assert_eq!(p.target(), t);
            let d = distance(&g, &m, 0.into(), t).unwrap();
            prop_assert_eq!(p.cost(&g, &m), d);
            // Every hop must be a real edge joining consecutive nodes.
            for (i, &e) in p.edges().iter().enumerate() {
                let rec = g.edge(e);
                prop_assert!(rec.touches(p.nodes()[i]));
                prop_assert!(rec.touches(p.nodes()[i + 1]));
            }
        }
    }
}

mod yen_and_cuts {
    use proptest::prelude::*;
    use rbpc_graph::{
        cut_elements, distance, k_shortest_paths, CostModel, FailureSet, Graph, Metric, NodeId,
    };

    fn arb_graph() -> impl Strategy<Value = Graph> {
        (4usize..=14).prop_flat_map(|n| {
            let edges = proptest::collection::vec((0..n, 0..n, 1u32..=9), 1..=2 * n);
            edges.prop_map(move |list| {
                let mut g = Graph::new(n);
                for i in 0..n - 1 {
                    g.add_edge(i, i + 1, 5).unwrap();
                }
                for (a, b, w) in list {
                    if a != b {
                        g.add_edge(a, b, w).unwrap();
                    }
                }
                g
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Yen's paths are simple, distinct, sorted, and start with the
        /// canonical shortest path.
        #[test]
        fn yen_invariants(g in arb_graph(), seed in 0u64..500, k in 1usize..6) {
            let m = CostModel::new(Metric::Weighted, seed);
            let t = NodeId::new(g.node_count() - 1);
            let ps = k_shortest_paths(&g, &m, NodeId::new(0), t, k);
            prop_assert!(!ps.is_empty());
            prop_assert!(ps.len() <= k);
            prop_assert_eq!(
                ps[0].cost(&g, &m).base,
                distance(&g, &m, NodeId::new(0), t).unwrap().base
            );
            for w in ps.windows(2) {
                prop_assert!(w[0].cost(&g, &m).perturbed <= w[1].cost(&g, &m).perturbed);
                prop_assert_ne!(&w[0], &w[1]);
            }
            for p in &ps {
                prop_assert!(p.is_simple());
            }
        }

        /// An edge is a bridge iff failing it disconnects its endpoints.
        #[test]
        fn bridges_match_disconnection(g in arb_graph(), seed in 0u64..500) {
            let m = CostModel::new(Metric::Weighted, seed);
            let cuts = cut_elements(&g);
            for e in g.edge_ids() {
                let (u, v) = g.endpoints(e);
                let f = FailureSet::of_edge(e);
                let view = f.view(&g);
                let disconnected = distance(&view, &m, u, v).is_none();
                prop_assert_eq!(disconnected, cuts.bridges.contains(&e), "edge {}", e);
            }
        }
    }
}
