//! Integration tests for the causal-tracing layer: span identity and
//! nesting, the global collector lifecycle, tree reassembly/rendering, and
//! the Chrome `trace_event` exporter (validated by round-tripping through
//! the crate's own JSON parser).
//!
//! The collector is process-global, so everything runs inside one `#[test]`
//! of sequential scenarios instead of racing parallel test threads.

use rbpc_obs::json::JsonValue;
use rbpc_obs::{
    chrome_trace_json, current_trace, json, start_tracing, stop_tracing, take_spans,
    tracing_active, TraceSpan, TraceTree, Value,
};

#[test]
fn tracing_end_to_end() {
    inactive_enter_is_none();
    nesting_and_identity();
    sibling_roots_get_distinct_traces();
    stop_discards_spans_still_open();
    tree_assembly_and_render();
    orphan_spans_are_promoted();
    chrome_export_roundtrips();
}

fn inactive_enter_is_none() {
    assert!(!tracing_active());
    assert!(TraceSpan::enter("noop", "test").is_none());
    assert!(current_trace().is_none());
}

fn nesting_and_identity() {
    start_tracing();
    {
        let mut root = TraceSpan::enter("outage", "restore").expect("active");
        root.attr("scheme", "source_rbpc");
        root.attr("k_failures", 2u64);
        assert!(root.is_root());
        assert_eq!(current_trace(), Some(root.trace()));
        {
            let child = TraceSpan::enter("flood.timeline", "flood").expect("active");
            assert!(!child.is_root());
            assert_eq!(child.trace(), root.trace());
            {
                let grandchild = TraceSpan::enter("base_path.lookup", "lookup").expect("active");
                assert_eq!(grandchild.trace(), root.trace());
            }
        }
        // Context restored after the children dropped.
        assert_eq!(current_trace(), Some(root.trace()));
    }
    assert!(current_trace().is_none());
    let spans = stop_tracing();
    assert_eq!(spans.len(), 3);
    // Drop order: innermost finishes first.
    assert_eq!(spans[0].name, "base_path.lookup");
    assert_eq!(spans[1].name, "flood.timeline");
    assert_eq!(spans[2].name, "outage");
    let root = &spans[2];
    assert!(root.parent.is_none());
    assert_eq!(root.attr("scheme"), Some(&Value::Str("source_rbpc".into())));
    assert_eq!(root.attr("k_failures"), Some(&Value::U64(2)));
    assert_eq!(spans[1].parent, Some(root.span));
    assert_eq!(spans[0].parent, Some(spans[1].span));
    assert!(spans.iter().all(|s| s.trace == root.trace));
}

fn sibling_roots_get_distinct_traces() {
    start_tracing();
    let first = TraceSpan::enter("outage", "restore").unwrap().trace();
    let second = TraceSpan::enter("outage", "restore").unwrap().trace();
    assert_ne!(first, second);
    let spans = stop_tracing();
    assert_eq!(spans.len(), 2);
    assert_ne!(spans[0].trace, spans[1].trace);
}

fn stop_discards_spans_still_open() {
    start_tracing();
    let open = TraceSpan::enter("outage", "restore").unwrap();
    let drained = stop_tracing();
    assert!(drained.is_empty());
    drop(open); // tracing stopped while open: must not leak into next window
    start_tracing();
    assert!(take_spans().is_empty());
    stop_tracing();
}

fn tree_assembly_and_render() {
    start_tracing();
    {
        let mut root = TraceSpan::enter("outage", "restore").unwrap();
        root.attr("scheme", "hybrid");
        {
            let _flood = TraceSpan::enter("flood.timeline", "flood").unwrap();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _concat = TraceSpan::enter("decompose.greedy", "concat").unwrap();
        }
        let _splice = TraceSpan::enter("ilm.splice", "splice").unwrap();
    }
    let spans = stop_tracing();
    let trees = TraceTree::build(&spans);
    assert_eq!(trees.len(), 1);
    let tree = &trees[0];
    assert_eq!(tree.span_count(), 4);
    assert_eq!(tree.root.record.name, "outage");
    assert_eq!(tree.root.children.len(), 3);
    // Children are ordered by start time.
    assert_eq!(tree.root.children[0].record.name, "flood.timeline");
    assert_eq!(tree.root.children[1].record.name, "decompose.greedy");
    assert_eq!(tree.root.children[2].record.name, "ilm.splice");
    let rendered = tree.render();
    assert!(rendered.contains("outage [restore]"));
    assert!(rendered.contains("scheme=\"hybrid\""));
    // The slept-in flood span dominates the root, so it is the critical
    // path and carries the `*` marker.
    assert!(
        rendered.contains("├─* flood.timeline [flood]"),
        "{rendered}"
    );
    assert!(rendered.contains("└─  ilm.splice [splice]"), "{rendered}");
}

fn orphan_spans_are_promoted() {
    start_tracing();
    let parent = TraceSpan::enter("outage", "restore").unwrap();
    {
        let _child = TraceSpan::enter("flood.timeline", "flood").unwrap();
    }
    // Drain while the parent is still open: the child's parent id is never
    // recorded in this batch, so the child must become a root of its own.
    let spans = take_spans();
    assert_eq!(spans.len(), 1);
    let trees = TraceTree::build(&spans);
    assert_eq!(trees.len(), 1);
    assert_eq!(trees[0].root.record.name, "flood.timeline");
    drop(parent);
    stop_tracing();
}

fn chrome_export_roundtrips() {
    start_tracing();
    {
        let mut root = TraceSpan::enter("outage", "restore").unwrap();
        root.attr("scheme", "local_edge_bypass");
        root.attr("stretch", 1.5f64);
        let _child = TraceSpan::enter("flood.timeline", "flood").unwrap();
    }
    let spans = stop_tracing();
    let json_text = chrome_trace_json(&spans);
    let parsed = json::parse(&json_text).expect("exporter emits valid JSON");
    assert_eq!(
        parsed.get("displayTimeUnit").and_then(JsonValue::as_str),
        Some("ms")
    );
    let events = parsed
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("traceEvents array");
    // One metadata event naming the trace row, plus the two spans.
    assert_eq!(events.len(), 3);
    let meta = &events[0];
    assert_eq!(meta.get("ph").and_then(JsonValue::as_str), Some("M"));
    let label = meta
        .get("args")
        .and_then(|a| a.get("name"))
        .and_then(JsonValue::as_str)
        .expect("thread_name label");
    assert!(label.contains("outage") && label.contains("local_edge_bypass"));
    for event in &events[1..] {
        assert_eq!(event.get("ph").and_then(JsonValue::as_str), Some("X"));
        assert!(event.get("ts").and_then(JsonValue::as_f64).is_some());
        assert!(event.get("dur").and_then(JsonValue::as_f64).unwrap() >= 0.0);
        assert_eq!(event.get("pid").and_then(JsonValue::as_f64), Some(1.0));
    }
    let root_event = events
        .iter()
        .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("outage"))
        .expect("root span exported");
    assert_eq!(
        root_event.get("cat").and_then(JsonValue::as_str),
        Some("restore")
    );
    let args = root_event.get("args").expect("args object");
    assert_eq!(
        args.get("scheme").and_then(JsonValue::as_str),
        Some("local_edge_bypass")
    );
    assert_eq!(args.get("stretch").and_then(JsonValue::as_f64), Some(1.5));
    // Round-trip: re-serializing the parsed document and parsing it again
    // yields the same value, so the export survives tooling that rewrites.
    let reprinted = parsed.to_string();
    assert_eq!(json::parse(&reprinted).unwrap(), parsed);

    // An empty span list still produces a well-formed document.
    let empty = json::parse(&chrome_trace_json(&[])).unwrap();
    assert_eq!(
        empty
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .map(<[JsonValue]>::len),
        Some(0)
    );
}
