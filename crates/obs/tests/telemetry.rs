//! Integration tests for the live-telemetry layer: golden-file checks of
//! the Prometheus exposition format, round-trips through the std-only
//! parsers, and a real TCP scrape of the `/metrics` endpoint.

use rbpc_obs::{
    json, parse_prometheus, render_prometheus, set_health, HealthReport, MetricsServer, Registry,
    Ticker, WindowedHistogram,
};
use std::time::Duration;

/// A registry with fixed contents so the rendered exposition text is
/// byte-for-byte reproducible.
fn golden_registry() -> Registry {
    let r = Registry::new();
    r.counter("core.restore.calls").add(42);
    r.counter("core.restore.ok").add(40);
    r.counter_with("sim.outage.events", "local_edge_bypass")
        .add(7);
    r.counter_with("sim.outage.events", "global_splice").add(3);
    let h = r.histogram("core.restore.ns");
    for v in [100u64, 200, 400, 800, 1600] {
        h.record(v);
    }
    r.histogram_with("loadtest.latency.ns", "restore")
        .record(2500);
    r
}

#[test]
fn metrics_match_golden_file() {
    let rendered = render_prometheus(&golden_registry().snapshot());
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
        std::fs::write(path, &rendered).expect("rewrite golden file");
        return;
    }
    let golden = include_str!("golden/metrics.prom");
    assert_eq!(
        rendered, golden,
        "exposition drifted from tests/golden/metrics.prom — \
         regenerate intentionally with REGEN_GOLDEN=1"
    );
}

#[test]
fn golden_file_parses_line_by_line() {
    let golden = include_str!("golden/metrics.prom");
    let samples = parse_prometheus(golden).expect("golden file parses");
    // Every non-comment line became exactly one (name, labels, value).
    let data_lines = golden
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .count();
    assert_eq!(samples.len(), data_lines);
    let find = |name: &str, label: Option<(&str, &str)>| {
        samples
            .iter()
            .find(|s| {
                s.name == name
                    && match label {
                        Some((k, v)) => s.label(k) == Some(v),
                        None => s.labels.is_empty(),
                    }
            })
            .unwrap_or_else(|| panic!("missing {name} {label:?}"))
            .value
    };
    assert_eq!(find("core_restore_calls_total", None), 42.0);
    assert_eq!(find("core_restore_ok_total", None), 40.0);
    assert_eq!(
        find(
            "sim_outage_events_total",
            Some(("kind", "local_edge_bypass"))
        ),
        7.0
    );
    assert_eq!(find("core_restore_ns_count", None), 5.0);
    assert_eq!(find("core_restore_ns_sum", None), 3100.0);
    assert_eq!(find("core_restore_ns", Some(("quantile", "0.5"))), 511.0);
    assert_eq!(
        find("loadtest_latency_ns_count", Some(("kind", "restore"))),
        1.0
    );
}

#[test]
fn snapshot_json_round_trips_through_std_parser() {
    // The JSON side of the round-trip satellite: Snapshot::to_json must
    // be readable by the workspace's own std-only JSON parser.
    let snap = golden_registry().snapshot();
    let parsed = json::parse(&snap.to_json()).expect("snapshot JSON parses");
    let counters = parsed.get("counters").expect("counters object");
    assert_eq!(
        counters.get("core.restore.calls").and_then(|v| v.as_f64()),
        Some(42.0)
    );
    let hist = parsed
        .get("histograms")
        .and_then(|h| h.get("core.restore.ns"))
        .expect("histogram object");
    assert_eq!(hist.get("count").and_then(|v| v.as_f64()), Some(5.0));
}

#[test]
fn metrics_endpoint_serves_and_parses() {
    // Feed the *global* registry (what the endpoint exports) and scrape
    // it over a real socket.
    Registry::global().counter("telemetry.test.scrapes").add(5);
    let server = match MetricsServer::serve("127.0.0.1:0") {
        Ok(server) => server,
        Err(e) => {
            // Sandboxes without loopback sockets: nothing to test.
            eprintln!("skipping endpoint test: bind failed: {e}");
            return;
        }
    };
    let addr = server.local_addr();

    let body = http_get(addr, "/metrics");
    let samples = parse_prometheus(&body).expect("scraped /metrics parses");
    assert!(
        samples
            .iter()
            .any(|s| s.name == "telemetry_test_scrapes_total" && s.value >= 5.0),
        "scrape missing our counter:\n{body}"
    );

    // /healthz reflects the global health cell: liveness-ok before any
    // report, 503 + reason once the SLO watchdog has latched a breach.
    // This test owns the cell end to end (no other test touches it).
    set_health(None);
    let health = http_get(addr, "/healthz");
    assert_eq!(health, "ok (no telemetry yet)\n");

    set_health(Some(HealthReport::ok("feed1234", 3)));
    let health = http_get_status(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "got: {health}");
    assert!(health.contains("ok run_id=feed1234 window=3"), "{health}");

    set_health(Some(HealthReport::degraded(
        "feed1234",
        4,
        "p99 9000ns > budget 1000ns",
    )));
    let health = http_get_status(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 503"), "got: {health}");
    assert!(
        health.contains("degraded run_id=feed1234 window=4"),
        "{health}"
    );
    assert!(
        health.contains("reason=p99 9000ns > budget 1000ns"),
        "{health}"
    );
    set_health(None);

    let missing = http_get_status(addr, "/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "got: {missing}");

    server.shutdown();
}

#[test]
fn ticker_drives_windows_end_to_end() {
    // The injected-tick contract: the ticker mints ticks, the histogram
    // only ever sees numbers.
    let ticker = Ticker::start(Duration::from_millis(1));
    let wh = WindowedHistogram::new(64);
    for i in 0..3u64 {
        let tick = ticker.wait_for(i);
        wh.record(tick, 100 * (i + 1));
    }
    let merged = wh.merged();
    assert_eq!(merged.count, 3);
    assert!(merged.quantile(0.5) > 0);
}

/// Minimal HTTP GET returning the response body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let response = http_get_status(addr, path);
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => panic!("no header/body split in response: {response:?}"),
    }
}

/// Minimal HTTP GET returning the raw response (status line included).
fn http_get_status(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to metrics server");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set read timeout");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}
