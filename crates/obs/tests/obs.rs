//! Integration tests for the observability layer: concurrency, quantile
//! correctness, span nesting (including unwinding), and the JSONL format.

use rbpc_obs::{Counter, Event, Histogram, JsonlSink, Registry, Span, Value};
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

#[test]
fn counter_is_correct_under_contention() {
    let counter = Counter::new();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..PER_THREAD {
                    counter.inc();
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
}

#[test]
fn registry_counter_handles_share_state_across_threads() {
    let registry = Registry::new();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let handle = registry.counter("contended");
                for _ in 0..1_000 {
                    handle.inc();
                }
            });
        }
    });
    assert_eq!(registry.snapshot().counter("contended"), Some(4_000));
}

#[test]
fn histogram_quantiles_bound_the_true_values() {
    // Log-bucketed histograms return the inclusive upper bound of the
    // bucket holding the quantile: an over-estimate by at most 2x, never
    // an under-estimate, and exact at the maximum.
    let h = Histogram::new();
    for v in 1..=1_000u64 {
        h.record(v);
    }
    let s = h.summary();
    assert_eq!(s.count, 1_000);
    assert_eq!(s.sum, 500_500);
    assert_eq!(s.max, 1_000);
    let p50 = s.p50;
    let p95 = s.p95;
    let p99 = s.p99;
    assert!((500..=1_023).contains(&p50), "p50 = {p50}");
    assert!((950..=1_000).contains(&p95), "p95 = {p95}");
    assert!((990..=1_000).contains(&p99), "p99 = {p99}");
    assert!(p50 <= p95 && p95 <= p99, "quantiles must be monotone");
}

#[test]
fn histogram_concurrent_recording_loses_nothing() {
    let h = Histogram::new();
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let h = &h;
            scope.spawn(move || {
                for i in 0..5_000 {
                    h.record(t * 5_000 + i + 1);
                }
            });
        }
    });
    assert_eq!(h.count(), 20_000);
    assert_eq!(h.max(), 20_000);
}

#[test]
fn spans_nest_and_record_on_drop() {
    let outer = Span::enter("obs_test.outer");
    assert_eq!(outer.depth(), 0);
    {
        let inner = Span::enter("obs_test.inner");
        assert_eq!(inner.depth(), 1);
    }
    drop(outer);
    let snap = Registry::global_snapshot();
    assert!(snap.histogram("obs_test.outer").unwrap().count >= 1);
    assert!(snap.histogram("obs_test.inner").unwrap().count >= 1);
}

#[test]
fn span_records_even_when_unwinding() {
    let before = Registry::global_snapshot()
        .histogram("obs_test.panicky")
        .map(|s| s.count)
        .unwrap_or(0);
    let result = std::panic::catch_unwind(|| {
        let _span = Span::enter("obs_test.panicky");
        panic!("boom");
    });
    assert!(result.is_err());
    let after = Registry::global_snapshot()
        .histogram("obs_test.panicky")
        .unwrap()
        .count;
    assert_eq!(after, before + 1, "drop during unwind must still record");
    // Unwinding must also restore the nesting depth.
    assert_eq!(Span::enter("obs_test.after_panic").depth(), 0);
}

/// A writer capturing everything for inspection.
#[derive(Clone)]
struct Capture(Arc<Mutex<Vec<u8>>>);

impl Write for Capture {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn jsonl_golden_line() {
    let buf = Capture(Arc::new(Mutex::new(Vec::new())));
    let sink = JsonlSink::new(buf.clone());
    sink.emit(&Event {
        name: "restore_done",
        ts_us: 1_234,
        fields: vec![
            ("src", Value::from(0usize)),
            ("dst", Value::from(9usize)),
            ("affected", Value::from(true)),
            ("segments", Value::from(2usize)),
        ],
    });
    drop(sink);
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    assert_eq!(
        text,
        "{\"event\":\"restore_done\",\"ts_us\":1234,\"src\":0,\"dst\":9,\
         \"affected\":true,\"segments\":2}\n"
    );
}

#[test]
fn jsonl_stream_is_one_parseable_object_per_line() {
    let buf = Capture(Arc::new(Mutex::new(Vec::new())));
    let sink = JsonlSink::new(buf.clone());
    for i in 0..50usize {
        sink.emit(&Event::now(
            "tick",
            vec![("i", Value::from(i)), ("label", Value::from("a\"b\nc"))],
        ));
    }
    drop(sink);
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 50);
    for (i, line) in lines.iter().enumerate() {
        // Minimal JSON object validation: balanced braces, quoted keys,
        // no raw control characters.
        assert!(line.starts_with('{') && line.ends_with('}'), "line {i}");
        assert!(!line.contains('\n') && !line.contains('\r'), "line {i}");
        assert!(line.contains("\"event\":\"tick\""), "line {i}");
        assert!(line.contains(&format!("\"i\":{i}")), "line {i}");
        assert!(line.contains("\"label\":\"a\\\"b\\nc\""), "line {i}");
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "line {i}"
        );
    }
}
