//! Metric registries and snapshots.

use crate::events::json_escape;
use crate::{Counter, Histogram, HistogramSummary};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

/// A store of named metric families.
///
/// Metrics are created on first use and live for the registry's
/// lifetime. A metric is addressed by name (`"core.restore.calls"`) and
/// optionally a label (`counter_with("sim.outage", "local_edge_bypass")`),
/// which is rendered as `name{label}`. Handles are `Arc`s, so hot call
/// sites may cache them and bypass the registry lock entirely.
///
/// Most code uses the process-global registry via the `obs_*!` macros;
/// separate instances exist for tests.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// Composed map key: `name` or `name{label}`.
fn compose(name: &str, label: Option<&str>) -> String {
    match label {
        None => name.to_string(),
        Some(l) => format!("{name}{{{l}}}"),
    }
}

impl Registry {
    /// A new empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-global registry the `obs_*!` macros record into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Self::get_or_insert(&self.counters, name, None)
    }

    /// The `label`-labeled counter in the `name` family.
    pub fn counter_with(&self, name: &str, label: &str) -> Arc<Counter> {
        Self::get_or_insert(&self.counters, name, Some(label))
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Self::get_or_insert(&self.histograms, name, None)
    }

    /// The `label`-labeled histogram in the `name` family.
    pub fn histogram_with(&self, name: &str, label: &str) -> Arc<Histogram> {
        Self::get_or_insert(&self.histograms, name, Some(label))
    }

    fn get_or_insert<M: Default>(
        map: &Mutex<BTreeMap<String, Arc<M>>>,
        name: &str,
        label: Option<&str>,
    ) -> Arc<M> {
        let mut map = map.lock().unwrap();
        if label.is_none() {
            // Fast path: query by &str, allocate only on first use.
            if let Some(m) = map.get(name) {
                return Arc::clone(m);
            }
        }
        Arc::clone(map.entry(compose(name, label)).or_default())
    }

    /// Freezes every metric into a [`Snapshot`], sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }

    /// [`snapshot`](Registry::snapshot) of the global registry.
    pub fn global_snapshot() -> Snapshot {
        Registry::global().snapshot()
    }

    /// Zeroes every metric (entries are kept). Intended for tests and
    /// between-suite isolation.
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap().values() {
            c.reset();
        }
        for h in self.histograms.lock().unwrap().values() {
            h.reset();
        }
    }
}

/// A frozen, sorted view of a [`Registry`]'s metrics.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` per counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, summary)` per histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl Snapshot {
    /// The value of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The summary of the histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// True when no metric has been touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Renders a fixed-width human-readable table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            let width = self
                .counters
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(0);
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {value:>12}");
            }
        }
        if !self.histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str("histograms\n");
            let width = self
                .histograms
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(0)
                .max("name".len());
            let _ = writeln!(
                out,
                "  {:<width$}  {:>10}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}",
                "name", "count", "mean", "p50", "p95", "p99", "max"
            );
            for (name, s) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<width$}  {:>10}  {:>12.1}  {:>12}  {:>12}  {:>12}  {:>12}",
                    name, s.count, s.mean, s.p50, s.p95, s.p99, s.max
                );
            }
        }
        out
    }

    /// Serializes the snapshot as one JSON object:
    /// `{"counters": {...}, "histograms": {name: {count, sum, mean, p50,
    /// p95, p99, max}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), value);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, s)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{:.3},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                json_escape(name),
                s.count,
                s.sum,
                s.mean,
                s.p50,
                s.p95,
                s.p99,
                s.max
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_and_labels() {
        let r = Registry::new();
        r.counter("a").add(3);
        r.counter("a").add(4);
        r.counter_with("a", "x").inc();
        r.histogram("h").record(10);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a"), Some(7));
        assert_eq!(snap.counter("a{x}"), Some(1));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn reset_keeps_entries() {
        let r = Registry::new();
        r.counter("a").add(9);
        r.histogram("h").record(5);
        r.reset();
        let snap = r.snapshot();
        assert_eq!(snap.counter("a"), Some(0));
        assert_eq!(snap.histogram("h").unwrap().count, 0);
    }

    #[test]
    fn json_shape() {
        let r = Registry::new();
        r.counter("c").inc();
        r.histogram("h").record(2);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"c\":1"));
        assert!(json.contains("\"count\":1"));
    }
}
