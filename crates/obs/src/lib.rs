//! Std-only observability for the RBPC workspace.
//!
//! The paper's whole claim is *speed of recovery* — restoration latency,
//! label-stack depth, signaling and table-update counts — so the hot
//! paths need first-class instrumentation, not ad-hoc timers in the eval
//! harness. This crate provides that layer with **no external
//! dependencies**: everything is built on `std::sync::atomic` and
//! `std::time`, so it compiles offline and adds nothing to the
//! dependency graph.
//!
//! # Pieces
//!
//! * [`Counter`] — a relaxed [`AtomicU64`](std::sync::atomic::AtomicU64)
//!   event counter;
//! * [`Histogram`] — a log-bucketed latency/size histogram with lock-free
//!   recording and p50/p95/p99/max [`summary`](Histogram::summary);
//! * [`Span`] — an RAII timer that records its elapsed nanoseconds into a
//!   global histogram on drop (including drops during unwinding), with
//!   per-thread nesting depth;
//! * [`Registry`] — a labeled metric-family store; the process-global one
//!   is [`Registry::global`], and [`Registry::global_snapshot`] freezes
//!   everything into a [`Snapshot`] for rendering or export;
//! * [`JsonlSink`] + [`obs_event!`] — structured events
//!   (`restore_start`, `restore_done`, `fec_rewrite`, `ilm_splice`,
//!   `decompose_fallback`, …) streamed as one JSON object per line;
//! * [`WindowedCounter`] / [`WindowedHistogram`] + [`Ticker`] — live
//!   time-series: per-window deltas and latency distributions in ring
//!   buffers, with mergeable [`WindowSnapshot`]s (ticks are injected, so
//!   only this crate touches the clock);
//! * [`render_prometheus`] / [`MetricsServer`] — text exposition format
//!   0.0.4 and a std-only `/metrics` + `/healthz` TCP endpoint (feature
//!   `obs-net`);
//! * [`Profiler`] — a span-stack sampler producing collapsed-stack
//!   (flamegraph) [`ProfileReport`]s from the same `obs_span!` sites the
//!   histograms use;
//! * [`FlightRecorder`] + [`obs_flight!`] — an always-on black-box ring
//!   of compact [`FlightRecord`]s (query endpoints, failure sets,
//!   outcomes, plan hashes) from the restoration hot paths;
//! * [`SloWatchdog`] + [`health_text`] — per-window budget checks (p99
//!   latency, drop rate) that latch the first breach — the trigger for
//!   freezing the ring into a replayable incident file — and the global
//!   health cell `/healthz` serves.
//!
//! # Feature gating
//!
//! Instrumented crates call the [`obs_count!`], [`obs_record!`],
//! [`obs_span!`], and [`obs_event!`] macros. Each macro expands an
//! `#[cfg(feature = "obs")]` guard *in the consumer crate*, so every
//! instrumented crate declares its own default-on `obs` feature; building
//! with `--no-default-features` compiles every instrumentation point to a
//! no-op with zero runtime cost.
//!
//! ```
//! use rbpc_obs::{obs_count, obs_span, Registry};
//!
//! {
//!     let _span = obs_span!("doc.example");
//!     obs_count!("doc.example.calls");
//! }
//! let snap = Registry::global_snapshot();
//! assert!(snap.counter("doc.example.calls").unwrap_or(0) >= 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod chrome;
mod counter;
mod events;
mod expose;
mod histogram;
pub mod json;
mod profile;
mod recorder;
mod registry;
mod slo;
mod span;
mod timeseries;
mod trace;

pub use chrome::{chrome_trace_json, TraceNode, TraceTree};
pub use counter::Counter;
pub use events::{emit, event_sink_active, json_escape, set_event_sink, Event, JsonlSink, Value};
pub use expose::{
    parse_prometheus, render_prometheus, sanitize_metric_name, MetricsServer, PromSample,
};
pub use histogram::{Histogram, HistogramSummary};
pub use profile::{ProfileReport, Profiler};
pub use recorder::{
    flight_record, flight_recorder, flight_recorder_active, set_flight_recorder, FlightKind,
    FlightRecord, FlightRecorder, STAMP_TICK,
};
pub use registry::{Registry, Snapshot};
pub use slo::{
    health_snapshot, health_text, set_health, HealthReport, HealthStatus, SloBreach, SloPolicy,
    SloWatchdog,
};
pub use span::Span;
pub use timeseries::{monotonic_ns, Ticker, WindowSnapshot, WindowedCounter, WindowedHistogram};
pub use trace::{
    current_trace, start_tracing, stop_tracing, take_spans, tracing_active, SpanId, SpanRecord,
    TraceId, TraceSpan,
};

/// Increments a counter in the global [`Registry`].
///
/// * `obs_count!("name")` — add 1;
/// * `obs_count!("name", n)` — add `n` (any unsigned integer expression);
/// * `obs_count!("name", label: l, n)` — add `n` to the `l`-labeled
///   member of the `name` family.
///
/// Compiles to a no-op when the calling crate's `obs` feature is off.
#[macro_export]
macro_rules! obs_count {
    ($name:expr) => {
        $crate::obs_count!($name, 1u64)
    };
    ($name:expr, label: $label:expr, $n:expr) => {{
        #[cfg(feature = "obs")]
        $crate::Registry::global()
            .counter_with($name, $label)
            .add($n as u64);
        #[cfg(not(feature = "obs"))]
        {
            let _ = (&$name, &$label, &$n);
        }
    }};
    ($name:expr, $n:expr) => {{
        #[cfg(feature = "obs")]
        $crate::Registry::global().counter($name).add($n as u64);
        #[cfg(not(feature = "obs"))]
        {
            let _ = (&$name, &$n);
        }
    }};
}

/// Records a value into a histogram in the global [`Registry`].
///
/// * `obs_record!("name", v)` — record `v`;
/// * `obs_record!("name", label: l, v)` — record into the `l`-labeled
///   member of the `name` family.
///
/// Compiles to a no-op when the calling crate's `obs` feature is off.
#[macro_export]
macro_rules! obs_record {
    ($name:expr, label: $label:expr, $v:expr) => {{
        #[cfg(feature = "obs")]
        $crate::Registry::global()
            .histogram_with($name, $label)
            .record($v as u64);
        #[cfg(not(feature = "obs"))]
        {
            let _ = (&$name, &$label, &$v);
        }
    }};
    ($name:expr, $v:expr) => {{
        #[cfg(feature = "obs")]
        $crate::Registry::global()
            .histogram($name)
            .record($v as u64);
        #[cfg(not(feature = "obs"))]
        {
            let _ = (&$name, &$v);
        }
    }};
}

/// Opens an RAII [`Span`] timer: `let _span = obs_span!("core.restore");`.
///
/// Evaluates to an `Option<Span>`; when the span drops (normally or
/// during unwinding) its elapsed nanoseconds are recorded into the global
/// histogram of the same name. Evaluates to `None` — with no timer
/// started — when the calling crate's `obs` feature is off.
#[macro_export]
macro_rules! obs_span {
    ($name:expr) => {{
        #[cfg(feature = "obs")]
        let __obs_span = Some($crate::Span::enter($name));
        #[cfg(not(feature = "obs"))]
        let __obs_span: Option<$crate::Span> = {
            let _ = &$name;
            None
        };
        __obs_span
    }};
}

/// Opens a causal trace span: `let mut _t = obs_trace!("flood.timeline",
/// cat: "flood", hops = 3usize);`.
///
/// Evaluates to an `Option<TraceSpan>` guard — `None` (nothing allocated)
/// unless [`start_tracing`] is active. With a span already open on the
/// current thread the new span becomes its child in the same trace;
/// otherwise it mints a fresh [`TraceId`] and roots a new trace. On drop
/// the span's wall-clock duration and attributes are pushed to the global
/// collector.
///
/// When the calling crate's `obs` feature is off the macro evaluates to
/// the zero-sized `()` — the span context costs nothing, compile-time or
/// run-time.
#[macro_export]
macro_rules! obs_trace {
    ($name:expr, cat: $cat:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        #[cfg(feature = "obs")]
        let __obs_trace = match $crate::TraceSpan::enter($name, $cat) {
            Some(mut __s) => {
                $(__s.attr(stringify!($key), $crate::Value::from($val));)*
                Some(__s)
            }
            None => None,
        };
        #[cfg(not(feature = "obs"))]
        let __obs_trace = {
            let _ = (&$name, &$cat $(, &$val)*);
        };
        __obs_trace
    }};
}

/// Attaches an attribute to an open [`obs_trace!`] guard after creation —
/// for values only known once the traced step finishes:
/// `obs_trace_attr!(span, stretch = 1.25f64);`.
///
/// The guard must be a `mut` binding. Compiles to a no-op when the calling
/// crate's `obs` feature is off, and does nothing when tracing is inactive
/// (the guard is `None`).
#[macro_export]
macro_rules! obs_trace_attr {
    ($span:ident, $key:ident = $val:expr) => {{
        #[cfg(feature = "obs")]
        if let Some(__s) = $span.as_mut() {
            __s.attr(stringify!($key), $crate::Value::from($val));
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (&mut $span, &$val);
        }
    }};
}

/// Emits a structured event to the active [`JsonlSink`], if one is set.
///
/// ```
/// # use rbpc_obs::obs_event;
/// obs_event!("restore_done", src = 3usize, dst = 9usize, segments = 2usize, ok = true);
/// ```
///
/// Field values may be any type convertible into [`Value`] (integers,
/// floats, bools, strings). Compiles to a no-op when the calling crate's
/// `obs` feature is off, and is a cheap early-out when no sink is set.
#[macro_export]
macro_rules! obs_event {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        #[cfg(feature = "obs")]
        {
            if $crate::event_sink_active() {
                $crate::emit(
                    $name,
                    vec![$((stringify!($key), $crate::Value::from($val))),*],
                );
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (&$name $(, &$val)*);
        }
    }};
}

/// Appends a [`FlightRecord`] to the global [`FlightRecorder`], if one is
/// installed: `obs_flight!(build_record_expr)`.
///
/// The record-building expression is **not evaluated** unless a recorder
/// is active — the un-recorded cost of a hook is one atomic load — so the
/// builder may allocate (failure-set vectors, detail strings) without
/// taxing the hot path. Compiles to a no-op when the calling crate's
/// `obs` feature is off.
#[macro_export]
macro_rules! obs_flight {
    ($build:expr) => {{
        #[cfg(feature = "obs")]
        {
            if $crate::flight_recorder_active() {
                $crate::flight_record($build);
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = || $build;
        }
    }};
}

/// A monotonic timestamp for flight-record latency stamps:
/// `let t0 = obs_flight_now!();`.
///
/// Evaluates to [`monotonic_ns`] when a global [`FlightRecorder`] is
/// installed and `0u64` otherwise (including when the calling crate's
/// `obs` feature is off) — the clock is only read when the result can
/// actually end up in a record.
#[macro_export]
macro_rules! obs_flight_now {
    () => {{
        #[cfg(feature = "obs")]
        {
            if $crate::flight_recorder_active() {
                $crate::monotonic_ns()
            } else {
                0u64
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            0u64
        }
    }};
}
