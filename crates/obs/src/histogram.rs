//! Log-bucketed histograms with lock-free recording.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per possible bit length of a `u64` (0..=64).
const BUCKETS: usize = 65;

/// A histogram over `u64` samples (typically nanoseconds) with
/// power-of-two buckets.
///
/// Sample `v` lands in the bucket for its bit length: bucket 0 holds only
/// zero, bucket `k` holds `[2^(k-1), 2^k)`. Buckets therefore have a
/// fixed 2x relative resolution — coarse, but branch-free, allocation
/// free, and entirely lock-free, which is what a hot restore path wants.
/// Quantiles are reported as the upper bound of the containing bucket, so
/// a reported quantile is within 2x of (and never below) the true sample
/// quantile.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A frozen human-consumable digest of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all samples (wrapping).
    pub sum: u64,
    /// Mean sample, or 0.0 if empty.
    pub mean: f64,
    /// Median (upper bound of the containing bucket).
    pub p50: u64,
    /// 95th percentile (upper bound of the containing bucket).
    pub p95: u64,
    /// 99th percentile (upper bound of the containing bucket).
    pub p99: u64,
    /// Exact maximum recorded sample.
    pub max: u64,
}

/// Bit-length bucket index of a sample.
#[inline]
fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A new empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact, not bucketed).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), reported as the inclusive
    /// upper bound of the smallest bucket whose cumulative count reaches
    /// `ceil(q * count)`. Returns 0 for an empty histogram. The exact
    /// [`max`](Histogram::max) caps the answer, so `quantile(1.0)` is the
    /// true maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// Freezes a [`HistogramSummary`] (count, mean, p50/p95/p99, max).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }

    /// Clears all buckets and statistics.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn exact_stats_and_bucketed_quantiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        // True p50 is 50; the bucket bound may overshoot by < 2x.
        let p50 = h.quantile(0.50);
        assert!((50..100).contains(&p50), "p50 = {p50}");
        // p100 is exact thanks to the max cap.
        assert_eq!(h.quantile(1.0), 100);
    }
}
