//! Log-bucketed histograms with lock-free recording.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per possible bit length of a `u64` (0..=64).
pub(crate) const BUCKETS: usize = 65;

/// A histogram over `u64` samples (typically nanoseconds) with
/// power-of-two buckets.
///
/// Sample `v` lands in the bucket for its bit length: bucket 0 holds only
/// zero, bucket `k` holds `[2^(k-1), 2^k)`. Buckets therefore have a
/// fixed 2x relative resolution — coarse, but branch-free, allocation
/// free, and entirely lock-free, which is what a hot restore path wants.
/// Quantiles are reported as the upper bound of the containing bucket, so
/// a reported quantile is within 2x of (and never below) the true sample
/// quantile.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A frozen human-consumable digest of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Total number of recorded samples (saturating at `u64::MAX`).
    pub count: u64,
    /// Sum of all samples (saturating at `u64::MAX`).
    pub sum: u64,
    /// Mean sample, or 0.0 if empty.
    pub mean: f64,
    /// Median (upper bound of the containing bucket).
    pub p50: u64,
    /// 95th percentile (upper bound of the containing bucket).
    pub p95: u64,
    /// 99th percentile (upper bound of the containing bucket).
    pub p99: u64,
    /// Exact maximum recorded sample.
    pub max: u64,
}

/// Bit-length bucket index of a sample.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
#[inline]
pub(crate) fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Shared quantile kernel over a frozen bucket array.
///
/// Reports the `q`-quantile (`q` clamped to `[0, 1]`) as the inclusive
/// upper bound of the smallest bucket whose cumulative count reaches
/// `ceil(q * count)`, capped by the exact `max`. Returns 0 when
/// `count == 0` — the defined "no data" value, never a bucket artifact.
/// Cumulative counts saturate, so histograms holding near-`u64::MAX`
/// totals still answer instead of wrapping past the rank.
pub(crate) fn quantile_over(buckets: &[u64; BUCKETS], count: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
    let mut cumulative = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        cumulative = cumulative.saturating_add(b);
        if cumulative >= rank {
            return bucket_upper(i).min(max);
        }
    }
    max
}

/// Saturating atomic add: the cell sticks at `u64::MAX` instead of
/// wrapping, so long-lived counters degrade to "at least this many"
/// rather than to nonsense.
#[inline]
fn saturating_fetch_add(cell: &AtomicU64, n: u64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = current.saturating_add(n);
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

impl Histogram {
    /// A new empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples in one shot (a batched
    /// [`record`](Histogram::record)). Counts and sums saturate at
    /// `u64::MAX` rather than wrapping, so quantiles stay defined even
    /// after pathological volumes.
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        saturating_fetch_add(&self.buckets[bucket_index(v)], n);
        saturating_fetch_add(&self.count, n);
        saturating_fetch_add(&self.sum, v.saturating_mul(n));
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (saturating at `u64::MAX`).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact, not bucketed).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), reported as the inclusive
    /// upper bound of the smallest bucket whose cumulative count reaches
    /// `ceil(q * count)`. Returns the defined value 0 for an empty
    /// histogram. The exact [`max`](Histogram::max) caps the answer, so
    /// `quantile(1.0)` is the true maximum and a single-sample histogram
    /// answers every quantile exactly.
    pub fn quantile(&self, q: f64) -> u64 {
        let mut frozen = [0u64; BUCKETS];
        for (slot, bucket) in frozen.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        quantile_over(&frozen, self.count(), self.max(), q)
    }

    /// Freezes a [`HistogramSummary`] (count, mean, p50/p95/p99, max).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }

    /// Clears all buckets and statistics.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn empty_histogram_quantiles_are_defined() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        // Every quantile of an empty histogram is the defined value 0 —
        // never a bucket upper bound or other artifact.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0, -3.0, 7.0] {
            assert_eq!(h.quantile(q), 0, "q = {q}");
        }
        let s = h.summary();
        assert_eq!((s.p50, s.p95, s.p99, s.max), (0, 0, 0, 0));
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let h = Histogram::new();
        h.record(777);
        // One sample: the max cap makes every quantile the sample itself,
        // despite the 2x-wide bucket it landed in.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 777, "q = {q}");
        }
        assert_eq!(h.summary().p50, 777);
        assert_eq!(h.mean(), 777.0);
    }

    #[test]
    fn saturating_counts_keep_quantiles_defined() {
        let h = Histogram::new();
        h.record_n(1, u64::MAX);
        h.record(2);
        h.record_n(3, u64::MAX);
        // count/sum stick at u64::MAX instead of wrapping to small values.
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.max(), 3);
        // Quantiles stay defined and ordered. With buckets themselves
        // saturated the rank resolves inside the first saturated bucket,
        // so answers degrade toward the low end — but never to garbage.
        assert_eq!(h.quantile(0.25), 1);
        let p100 = h.quantile(1.0);
        assert!((1..=3).contains(&p100), "p100 = {p100}");
        let s = h.summary();
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let a = Histogram::new();
        let b = Histogram::new();
        for _ in 0..10 {
            a.record(42);
        }
        b.record_n(42, 10);
        b.record_n(7, 0); // no-op
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.max(), b.max());
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
    }

    #[test]
    fn exact_stats_and_bucketed_quantiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        // True p50 is 50; the bucket bound may overshoot by < 2x.
        let p50 = h.quantile(0.50);
        assert!((50..100).contains(&p50), "p50 = {p50}");
        // p100 is exact thanks to the max cap.
        assert_eq!(h.quantile(1.0), 100);
    }
}
