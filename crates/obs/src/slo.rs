//! SLO watchdog: budget checks over finished telemetry windows, plus the
//! process-global health cell behind `/healthz`.
//!
//! The load-test driver hands the [`SloWatchdog`] one finished window at
//! a time — the latency [`HistogramSummary`] and the restored/dropped
//! counts. The watchdog compares them against an [`SloPolicy`] (p99
//! latency budget, drop-rate burn budget) and reports the **first**
//! breach exactly once; that return is the freeze trigger — the caller
//! snapshots the [flight recorder](crate::FlightRecorder) into an
//! incident file the moment it fires. Later windows keep being counted
//! but cannot re-trigger: one incident per run keeps the capture
//! focused on the window that actually broke the budget.
//!
//! [`set_health`] publishes the latest verdict so the `/healthz` probe
//! endpoint (see `MetricsServer`) can answer with real state — `ok` vs
//! `degraded`, the breach reason, and how stale the last window is —
//! instead of an unconditional `ok`.

use crate::histogram::HistogramSummary;
use crate::timeseries::monotonic_ns;
use std::sync::{Mutex, OnceLock};

/// Budgets a run must stay within, evaluated per finished window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloPolicy {
    /// p99 restore-latency budget in nanoseconds (`None` disables).
    pub p99_budget_ns: Option<u64>,
    /// Maximum dropped queries per thousand attempts (`None` disables).
    pub max_drop_per_mille: Option<u64>,
    /// Minimum samples in a window before either check applies —
    /// near-empty windows produce garbage percentiles.
    pub min_samples: u64,
}

impl Default for SloPolicy {
    /// No budgets (never breaches), one-sample minimum.
    fn default() -> SloPolicy {
        SloPolicy {
            p99_budget_ns: None,
            max_drop_per_mille: None,
            min_samples: 1,
        }
    }
}

impl SloPolicy {
    /// True when at least one budget is set — i.e. the watchdog can
    /// actually breach.
    pub fn is_enabled(&self) -> bool {
        self.p99_budget_ns.is_some() || self.max_drop_per_mille.is_some()
    }
}

/// The first window that broke the policy, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloBreach {
    /// Tick of the breaching window.
    pub tick: u64,
    /// Human-readable explanation, e.g. `p99 81920ns > budget 1000ns`.
    pub reason: String,
}

/// Evaluates finished windows against an [`SloPolicy`]; latches the
/// first breach.
#[derive(Debug)]
pub struct SloWatchdog {
    policy: SloPolicy,
    breach: Option<SloBreach>,
    windows: u64,
}

impl SloWatchdog {
    /// A fresh watchdog (no windows observed, no breach).
    pub fn new(policy: SloPolicy) -> SloWatchdog {
        SloWatchdog {
            policy,
            breach: None,
            windows: 0,
        }
    }

    /// The policy this watchdog enforces.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Evaluates one finished window. Returns the breach **only the
    /// first time one is detected** — that edge is the signal to freeze
    /// the flight recorder. Subsequent windows are still counted but
    /// never re-trigger.
    pub fn observe(
        &mut self,
        tick: u64,
        latency: &HistogramSummary,
        restored: u64,
        dropped: u64,
    ) -> Option<&SloBreach> {
        self.windows += 1;
        if self.breach.is_some() {
            return None;
        }
        let mut reason = None;
        if let Some(budget) = self.policy.p99_budget_ns {
            if latency.count >= self.policy.min_samples && latency.p99 > budget {
                reason = Some(format!("p99 {}ns > budget {}ns", latency.p99, budget));
            }
        }
        if reason.is_none() {
            if let Some(max_pm) = self.policy.max_drop_per_mille {
                let total = restored + dropped;
                if total >= self.policy.min_samples.max(1) {
                    let pm = dropped.saturating_mul(1000) / total;
                    if pm > max_pm {
                        reason = Some(format!(
                            "drop rate {pm}/1000 > budget {max_pm}/1000 \
                             ({dropped} of {total} queries)"
                        ));
                    }
                }
            }
        }
        let reason = reason?;
        self.breach = Some(SloBreach { tick, reason });
        self.breach.as_ref()
    }

    /// The latched breach, if any window has broken the policy.
    pub fn breach(&self) -> Option<&SloBreach> {
        self.breach.as_ref()
    }

    /// Number of windows observed so far.
    pub fn windows_observed(&self) -> u64 {
        self.windows
    }
}

/// Coarse health verdict for probe endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// Within all budgets so far.
    Ok,
    /// An SLO breach has been latched this run.
    Degraded,
}

/// What the serving process last reported about its own health.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Current verdict.
    pub status: HealthStatus,
    /// Breach reason when degraded; empty when ok.
    pub reason: String,
    /// Run correlation id (joins `/healthz` output with JSONL windows
    /// and incident files).
    pub run_id: String,
    /// Tick of the last finished window.
    pub tick: u64,
    /// [`monotonic_ns`] at the time of the update, for staleness.
    pub updated_ns: u64,
}

impl HealthReport {
    /// An `Ok` report for the given run at the given window tick,
    /// stamped now.
    pub fn ok(run_id: &str, tick: u64) -> HealthReport {
        HealthReport {
            status: HealthStatus::Ok,
            reason: String::new(),
            run_id: run_id.to_string(),
            tick,
            updated_ns: monotonic_ns(),
        }
    }

    /// A `Degraded` report carrying the breach reason, stamped now.
    pub fn degraded(run_id: &str, tick: u64, reason: &str) -> HealthReport {
        HealthReport {
            status: HealthStatus::Degraded,
            reason: reason.to_string(),
            run_id: run_id.to_string(),
            tick,
            updated_ns: monotonic_ns(),
        }
    }
}

fn health_slot() -> &'static Mutex<Option<HealthReport>> {
    static SLOT: OnceLock<Mutex<Option<HealthReport>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Publishes (or, with `None`, clears) the process-global health report
/// that `/healthz` serves. Returns the previous report.
pub fn set_health(report: Option<HealthReport>) -> Option<HealthReport> {
    std::mem::replace(
        &mut *health_slot().lock().expect("health slot poisoned"),
        report,
    )
}

/// The current health report, if one has been published.
pub fn health_snapshot() -> Option<HealthReport> {
    health_slot().lock().expect("health slot poisoned").clone()
}

/// Renders `/healthz`: `(healthy, body)`. `healthy == false` maps to
/// HTTP 503 so load-balancer probes eject a degraded instance. With no
/// report published yet (server up, no load test running) the endpoint
/// stays `ok` — liveness, not readiness.
pub fn health_text() -> (bool, String) {
    match health_snapshot() {
        None => (true, "ok (no telemetry yet)\n".to_string()),
        Some(h) => {
            let age_ms = monotonic_ns().saturating_sub(h.updated_ns) / 1_000_000;
            match h.status {
                HealthStatus::Ok => (
                    true,
                    format!(
                        "ok run_id={} window={} age_ms={}\n",
                        h.run_id, h.tick, age_ms
                    ),
                ),
                HealthStatus::Degraded => (
                    false,
                    format!(
                        "degraded run_id={} window={} age_ms={} reason={}\n",
                        h.run_id, h.tick, age_ms, h.reason
                    ),
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(count: u64, p99: u64) -> HistogramSummary {
        HistogramSummary {
            count,
            sum: count.saturating_mul(p99),
            mean: p99 as f64,
            p50: p99 / 2,
            p95: p99,
            p99,
            max: p99,
        }
    }

    #[test]
    fn default_policy_never_breaches() {
        let mut dog = SloWatchdog::new(SloPolicy::default());
        assert!(!dog.policy().is_enabled());
        assert!(dog.observe(0, &summary(100, u64::MAX), 0, 100).is_none());
        assert!(dog.breach().is_none());
        assert_eq!(dog.windows_observed(), 1);
    }

    #[test]
    fn p99_breach_latches_once() {
        let policy = SloPolicy {
            p99_budget_ns: Some(1_000),
            ..SloPolicy::default()
        };
        let mut dog = SloWatchdog::new(policy);
        assert!(dog.observe(0, &summary(10, 500), 10, 0).is_none());
        let breach = dog.observe(1, &summary(10, 2_000), 10, 0).cloned();
        let breach = breach.expect("second window breaches");
        assert_eq!(breach.tick, 1);
        assert!(breach.reason.contains("p99 2000ns"), "{}", breach.reason);
        // Worse windows later do not re-trigger; the latch holds.
        assert!(dog.observe(2, &summary(10, 9_000), 10, 0).is_none());
        assert_eq!(dog.breach().expect("latched").tick, 1);
        assert_eq!(dog.windows_observed(), 3);
    }

    #[test]
    fn min_samples_gates_percentile_noise() {
        let policy = SloPolicy {
            p99_budget_ns: Some(1_000),
            min_samples: 5,
            ..SloPolicy::default()
        };
        let mut dog = SloWatchdog::new(policy);
        // 3 samples < min_samples: a wild p99 is ignored.
        assert!(dog.observe(0, &summary(3, 99_999), 3, 0).is_none());
        assert!(dog.observe(1, &summary(5, 99_999), 5, 0).is_some());
    }

    #[test]
    fn drop_rate_breach() {
        let policy = SloPolicy {
            max_drop_per_mille: Some(100), // 10%
            ..SloPolicy::default()
        };
        let mut dog = SloWatchdog::new(policy);
        assert!(dog.observe(0, &summary(95, 10), 95, 5).is_none()); // 5%
        let breach = dog.observe(1, &summary(80, 10), 80, 20); // 20%
        let reason = &breach.expect("drop budget blown").reason;
        assert!(reason.contains("drop rate 200/1000"), "{reason}");
    }

    #[test]
    fn health_cell_round_trip_and_text() {
        // Single test owns the global cell (parallel test isolation).
        assert_eq!(set_health(None), None);
        let (healthy, body) = health_text();
        assert!(healthy);
        assert!(body.contains("no telemetry"));

        set_health(Some(HealthReport::ok("cafe0123", 4)));
        let (healthy, body) = health_text();
        assert!(healthy);
        assert!(body.starts_with("ok run_id=cafe0123 window=4 age_ms="));

        let prev = set_health(Some(HealthReport::degraded(
            "cafe0123",
            5,
            "p99 over budget",
        )));
        assert_eq!(prev.expect("ok report was set").status, HealthStatus::Ok);
        let (healthy, body) = health_text();
        assert!(!healthy);
        assert!(body.starts_with("degraded run_id=cafe0123 window=5"));
        assert!(body.trim_end().ends_with("reason=p99 over budget"));
        assert_eq!(
            health_snapshot().expect("still set").status,
            HealthStatus::Degraded
        );
        set_health(None);
    }
}
