//! A minimal std-only JSON reader.
//!
//! The workspace builds fully offline, so `serde_json` is not available;
//! this module provides the small amount of JSON *reading* the tooling
//! needs — validating exported traces and metric snapshots round-trip, and
//! parsing benchmark result files in the perf-regression gate. It is a
//! strict recursive-descent parser over the full JSON grammar (RFC 8259),
//! with numbers mapped to `f64`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers above 2^53 lose precision).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; keys sorted (JSON objects are unordered maps).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The object member named `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for JsonValue {
    /// Serializes back to compact JSON (strings re-escaped, numbers via
    /// Rust's shortest-roundtrip `f64` formatting).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(x) if x.is_finite() => write!(f, "{x}"),
            JsonValue::Num(_) => f.write_str("null"),
            JsonValue::Str(s) => write!(f, "\"{}\"", crate::json_escape(s)),
            JsonValue::Arr(v) => {
                f.write_str("[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", crate::json_escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an error.
///
/// ```
/// use rbpc_obs::json::parse;
/// let v = parse(r#"{"a": [1, true, "x\n"]}"#).unwrap();
/// assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
/// ```
///
/// # Errors
///
/// A human-readable message with the byte offset of the first error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest escape-free UTF-8 run at once.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 near byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos += 4;
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        // Surrogate pair: \uD800-\uDBFF must be followed by \uDC00-\uDFFF.
        if (0xD800..0xDC00).contains(&hi) {
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(format!("lone surrogate at byte {}", self.pos));
            }
            self.pos += 2;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(format!("bad surrogate pair at byte {}", self.pos));
            }
            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            return char::from_u32(c).ok_or_else(|| "invalid code point".to_string());
        }
        char::from_u32(hi).ok_or_else(|| format!("lone surrogate at byte {}", self.pos))
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if let Some(b'e' | b'E') = self.peek() {
            self.pos += 1;
            if let Some(b'+' | b'-') = self.peek() {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), JsonValue::Num(-1250.0));
        assert_eq!(
            parse("\"a\\n\\u0041\\ud83d\\ude00\"").unwrap(),
            JsonValue::Str("a\nA😀".to_string())
        );
    }

    #[test]
    fn nested_roundtrip() {
        let text = r#"{"b":[1,{"x":null},"s"],"a":true}"#;
        let v = parse(text).unwrap();
        let again = parse(&v.to_string()).unwrap();
        assert_eq!(v, again);
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn errors_are_positioned() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1}").unwrap_err().contains("trailing"));
        assert!(parse("\"\\ud800x\"").is_err());
    }
}
