//! Trace exporters: Chrome/Perfetto `trace_event` JSON and human-readable
//! per-trace trees with critical-path marking.
//!
//! [`chrome_trace_json`] renders collected [`SpanRecord`]s in the Chrome
//! tracing "JSON object format": `{"traceEvents": [...]}` of complete
//! (`"ph":"X"`) events, loadable in `ui.perfetto.dev` or
//! `chrome://tracing`. Each trace is mapped to its own `tid` so Perfetto
//! shows one row per restoration, labeled through a `thread_name` metadata
//! event with the root span's name and scheme.
//!
//! [`TraceTree`] reassembles the flat span list into parent/child trees and
//! renders them as indented text, marking the critical path (the chain of
//! longest-duration children) — what `rbpc-eval trace` prints.

use crate::events::json_escape;
use crate::trace::{SpanId, SpanRecord, TraceId};
use crate::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn write_json_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => {
            let _ = write!(out, "\"{}\"", json_escape(s));
        }
    }
}

/// Renders spans as Chrome `trace_event` JSON (the object format with a
/// `traceEvents` array), loadable in `ui.perfetto.dev`.
///
/// Timestamps and durations are microseconds with fractional precision
/// (the format's native unit). All events share `pid` 1; `tid` is the
/// trace id, so each restoration gets its own named row.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    // One thread_name metadata event per trace, labeled by its root span.
    let mut roots: BTreeMap<TraceId, &SpanRecord> = BTreeMap::new();
    for s in spans {
        if s.parent.is_none() {
            roots.entry(s.trace).or_insert(s);
        }
    }
    for (trace, root) in &roots {
        let mut label = format!("trace {} {}", trace.value(), root.name);
        if let Some(Value::Str(scheme)) = root.attr("scheme") {
            let _ = write!(label, " [{scheme}]");
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            trace.value(),
            json_escape(&label)
        );
    }
    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"trace\":{},\"span\":{}",
            json_escape(s.name),
            json_escape(s.cat),
            s.start_ns as f64 / 1_000.0,
            s.dur_ns as f64 / 1_000.0,
            s.trace.value(),
            s.trace.value(),
            s.span.value(),
        );
        if let Some(p) = s.parent {
            let _ = write!(out, ",\"parent\":{}", p.value());
        }
        for (key, value) in &s.attrs {
            let _ = write!(out, ",\"{}\":", json_escape(key));
            write_json_value(&mut out, value);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// One span with its children, inside a [`TraceTree`].
#[derive(Debug, Clone)]
pub struct TraceNode {
    /// The span itself.
    pub record: SpanRecord,
    /// Child spans, ordered by start time.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Total spans in this subtree (including this one).
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(TraceNode::span_count)
            .sum::<usize>()
    }
}

/// One reassembled trace: the root span and everything beneath it.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The trace's identity.
    pub trace: TraceId,
    /// The root span (no parent) with nested children.
    pub root: TraceNode,
}

impl TraceTree {
    /// Groups a flat span list by trace and nests children under parents,
    /// sorted by start time. Spans whose parent was never recorded (e.g.
    /// tracing started mid-restoration) are promoted to roots, so every
    /// span appears in exactly one tree.
    pub fn build(spans: &[SpanRecord]) -> Vec<TraceTree> {
        let mut by_trace: BTreeMap<TraceId, Vec<&SpanRecord>> = BTreeMap::new();
        for s in spans {
            by_trace.entry(s.trace).or_default().push(s);
        }
        let mut trees = Vec::new();
        for (trace, records) in by_trace {
            let known: std::collections::BTreeSet<SpanId> =
                records.iter().map(|r| r.span).collect();
            // Every span starts as a leaf node; then attach to parents.
            let mut nodes: BTreeMap<SpanId, TraceNode> = records
                .iter()
                .map(|r| {
                    (
                        r.span,
                        TraceNode {
                            record: (*r).clone(),
                            children: Vec::new(),
                        },
                    )
                })
                .collect();
            // Attach bottom-up: children sorted by span id are attached to
            // their parents in reverse id order, which is safe because a
            // child's id is always minted after its parent's.
            let ids: Vec<SpanId> = nodes.keys().rev().copied().collect();
            for id in ids {
                let parent = nodes[&id].record.parent.filter(|p| known.contains(p));
                if let Some(parent) = parent {
                    let node = nodes.remove(&id).expect("present by construction");
                    nodes
                        .get_mut(&parent)
                        .expect("filtered to known ids")
                        .children
                        .push(node);
                }
            }
            for (_, mut root) in nodes {
                sort_children(&mut root);
                trees.push(TraceTree { trace, root });
            }
        }
        trees
    }

    /// Total spans in the trace.
    pub fn span_count(&self) -> usize {
        self.root.span_count()
    }

    /// Renders the tree as indented text. Each line shows the span name,
    /// `[category]`, duration, and attributes; spans on the critical path
    /// (the chain of longest-duration children from the root) are marked
    /// with `*`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {} · {}",
            self.trace.value(),
            line_for(&self.root.record)
        );
        render_children(&mut out, &self.root, "", true);
        out
    }
}

fn sort_children(node: &mut TraceNode) {
    node.children
        .sort_by_key(|c| (c.record.start_ns, c.record.span));
    for c in &mut node.children {
        sort_children(c);
    }
}

fn fmt_dur(ns: u64) -> String {
    let us = ns as f64 / 1_000.0;
    if us >= 1_000_000.0 {
        format!("{:.2}s", us / 1_000_000.0)
    } else if us >= 1_000.0 {
        format!("{:.2}ms", us / 1_000.0)
    } else {
        format!("{us:.1}us")
    }
}

fn line_for(r: &SpanRecord) -> String {
    let mut line = format!("{} [{}] {}", r.name, r.cat, fmt_dur(r.dur_ns));
    for (key, value) in &r.attrs {
        let mut rendered = String::new();
        write_json_value(&mut rendered, value);
        let _ = write!(line, "  {key}={rendered}");
    }
    line
}

fn render_children(out: &mut String, node: &TraceNode, prefix: &str, on_critical: bool) {
    // The critical-path child: the longest-duration one, if any.
    let critical = node
        .children
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| c.record.dur_ns)
        .map(|(i, _)| i);
    for (i, child) in node.children.iter().enumerate() {
        let last = i + 1 == node.children.len();
        let is_critical = on_critical && Some(i) == critical;
        let marker = if is_critical { "*" } else { " " };
        let _ = writeln!(
            out,
            "{prefix}{}{marker} {}",
            if last { "└─" } else { "├─" },
            line_for(&child.record)
        );
        let next = format!("{prefix}{}", if last { "   " } else { "│  " });
        render_children(out, child, &next, is_critical);
    }
}
