//! Causal tracing: trace/span identity, RAII span guards with thread-local
//! context propagation, and a process-global span collector.
//!
//! A **trace** is one causally-related unit of work — here, one restoration
//! of one LSP after a failure injection. A **span** is one timed step inside
//! it (flood wait, base-path lookup, concatenation search, FEC rewrite, ILM
//! splice). Spans carry typed attributes ([`Value`]) and nest through a
//! thread-local context: entering a span while another is open on the same
//! thread makes it a child; entering one with no context open mints a fresh
//! [`TraceId`] and becomes a trace root.
//!
//! Collection is opt-in and cheap when off: [`TraceSpan::enter`] checks one
//! atomic load and returns `None` unless [`start_tracing`] has been called,
//! so un-traced runs pay one branch per instrumentation point. Finished
//! spans are pushed as [`SpanRecord`]s into a global buffer drained by
//! [`stop_tracing`] / [`take_spans`]; exporters live in
//! [`chrome`](crate::chrome_trace_json) and [`TraceTree`](crate::TraceTree).

use crate::events::epoch_nanos;
use crate::Value;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Identity of one trace (one restoration, end to end).
///
/// Allocated from a process-wide atomic counter, starting at 1; ids are
/// unique within a process and stable across identical runs (allocation
/// order is deterministic for single-threaded scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// The raw numeric id.
    pub fn value(self) -> u64 {
        self.0
    }

    fn mint() -> TraceId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        TraceId(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

/// Identity of one span within the process (unique across traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw numeric id.
    pub fn value(self) -> u64 {
        self.0
    }

    fn mint() -> SpanId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        SpanId(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

/// A finished span, as stored by the collector.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// The enclosing span, or `None` for a trace root.
    pub parent: Option<SpanId>,
    /// Span name, e.g. `flood.timeline`.
    pub name: &'static str,
    /// Span category, e.g. `flood`, `lookup`, `concat`, `rewrite`, `splice`.
    pub cat: &'static str,
    /// Nanoseconds since the observability epoch at which the span opened.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Ordered `(key, value)` attributes.
    pub attrs: Vec<(&'static str, Value)>,
}

impl SpanRecord {
    /// The value of the attribute named `key`, if present.
    pub fn attr(&self, key: &str) -> Option<&Value> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

thread_local! {
    /// The innermost open span on this thread: `(trace, span)`.
    static CURRENT: Cell<Option<(TraceId, SpanId)>> = const { Cell::new(None) };
}

static TRACING_ACTIVE: AtomicBool = AtomicBool::new(false);

fn collector() -> &'static Mutex<Vec<SpanRecord>> {
    static SPANS: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    SPANS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Starts collecting spans, clearing anything previously buffered.
pub fn start_tracing() {
    collector().lock().unwrap().clear();
    TRACING_ACTIVE.store(true, Ordering::Release);
}

/// Stops collecting and returns every span finished since
/// [`start_tracing`]. Spans still open keep running but are only recorded
/// if tracing is active again when they drop.
pub fn stop_tracing() -> Vec<SpanRecord> {
    TRACING_ACTIVE.store(false, Ordering::Release);
    std::mem::take(&mut *collector().lock().unwrap())
}

/// Drains the buffered spans without deactivating collection.
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *collector().lock().unwrap())
}

/// True while [`start_tracing`] is in effect — the one-atomic-load guard
/// every instrumentation point checks first.
#[inline]
pub fn tracing_active() -> bool {
    TRACING_ACTIVE.load(Ordering::Acquire)
}

/// The trace the current thread is inside, if any.
pub fn current_trace() -> Option<TraceId> {
    CURRENT.with(|c| c.get()).map(|(t, _)| t)
}

/// An open span: an RAII guard that records a [`SpanRecord`] on drop
/// (normal exit or unwinding) and restores the thread's previous context.
///
/// Created via the [`obs_trace!`](crate::obs_trace) macro in instrumented
/// crates, or [`TraceSpan::enter`] directly.
#[derive(Debug)]
pub struct TraceSpan {
    trace: TraceId,
    span: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    started: Instant,
    attrs: Vec<(&'static str, Value)>,
    /// Context to restore on drop.
    prev: Option<(TraceId, SpanId)>,
}

impl TraceSpan {
    /// Opens a span, or returns `None` when tracing is inactive.
    ///
    /// With a span already open on this thread the new one becomes its
    /// child within the same trace; otherwise a fresh [`TraceId`] is
    /// minted and this span is the trace root.
    pub fn enter(name: &'static str, cat: &'static str) -> Option<TraceSpan> {
        if !tracing_active() {
            return None;
        }
        let prev = CURRENT.with(|c| c.get());
        let (trace, parent) = match prev {
            Some((trace, span)) => (trace, Some(span)),
            None => (TraceId::mint(), None),
        };
        let span = SpanId::mint();
        CURRENT.with(|c| c.set(Some((trace, span))));
        Some(TraceSpan {
            trace,
            span,
            parent,
            name,
            cat,
            start_ns: epoch_nanos(),
            started: Instant::now(),
            attrs: Vec::new(),
            prev,
        })
    }

    /// This span's trace.
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// This span's id.
    pub fn span(&self) -> SpanId {
        self.span
    }

    /// True when this span minted its trace (has no parent).
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    /// Attaches (or appends, keys are not deduplicated) an attribute.
    pub fn attr(&mut self, key: &'static str, value: impl Into<Value>) {
        self.attrs.push((key, value.into()));
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
        let record = SpanRecord {
            trace: self.trace,
            span: self.span,
            parent: self.parent,
            name: self.name,
            cat: self.cat,
            start_ns: self.start_ns,
            dur_ns: u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            attrs: std::mem::take(&mut self.attrs),
        };
        // Re-check: tracing may have stopped while the span was open.
        if tracing_active() {
            collector().lock().unwrap().push(record);
        }
    }
}
