//! RAII span timers.

use crate::Registry;
use std::cell::Cell;
use std::time::Instant;

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// An RAII timer over a named region of code.
///
/// `Span::enter("core.restore")` starts the clock; when the span drops —
/// at normal scope exit *or* while unwinding from a panic — the elapsed
/// nanoseconds are recorded into the global histogram of the same name,
/// so a crashing restore still leaves its latency on the record.
///
/// Spans nest: [`depth`](Span::depth) reports how many spans were already
/// open on this thread when this one was entered (0 = outermost).
///
/// While a [`Profiler`](crate::Profiler) is running, entering a span also
/// pushes its name onto the per-thread frame stack the sampler reads;
/// when none is running that hook is a single relaxed atomic load.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Instant,
    depth: usize,
    /// Whether this span pushed a profiler frame (captured at entry so a
    /// profiler starting/stopping mid-span stays balanced).
    profiled: bool,
}

impl Span {
    /// Opens a span; the returned guard records on drop.
    pub fn enter(name: &'static str) -> Span {
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        let profiled = crate::profile::push_frame(name);
        Span {
            name,
            start: Instant::now(),
            depth,
            profiled,
        }
    }

    /// The metric name this span records to.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Nesting depth at entry (0 = outermost span on this thread).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Nanoseconds elapsed so far (also what drop will record).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.profiled {
            crate::profile::pop_frame();
        }
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        Registry::global()
            .histogram(self.name)
            .record(self.elapsed_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_depth() {
        let outer = Span::enter("span.test.outer");
        assert_eq!(outer.depth(), 0);
        {
            let inner = Span::enter("span.test.inner");
            assert_eq!(inner.depth(), 1);
        }
        let sibling = Span::enter("span.test.sibling");
        assert_eq!(sibling.depth(), 1);
    }
}
