//! Prometheus-style text exposition (format 0.0.4) and the `/metrics`
//! endpoint.
//!
//! [`render_prometheus`] turns a [`Snapshot`] into the plain-text format
//! every Prometheus-compatible scraper understands: counters become
//! `<name>_total` samples, histograms become summaries with
//! `quantile="0.5|0.95|0.99"` samples plus `_sum`/`_count` (and an
//! `_max` gauge, which the text format has no native slot for). Dotted
//! workspace metric names (`core.restore.ns`) are sanitized to the
//! Prometheus charset (`core_restore_ns`); a registry label
//! (`name{label}`, see [`Registry`](crate::Registry)) is exported as
//! `kind="<label>"`.
//!
//! [`parse_prometheus`] is the matching std-only reader — enough of the
//! format to round-trip our own output line by line (name, labels,
//! value), used by the golden-file tests and by anything that wants to
//! scrape a peer without a real Prometheus.
//!
//! [`MetricsServer`] serves the global registry over a std-only
//! `TcpListener` (`GET /metrics`, `GET /healthz`) from one background
//! thread. It is gated behind the `obs-net` feature; without the feature
//! the type still exists and `serve` fails with
//! [`ErrorKind::Unsupported`](std::io::ErrorKind::Unsupported), so
//! callers stay cfg-free.

use crate::Snapshot;
use std::fmt::Write as _;

/// An ordered `(key, value)` label set.
type LabelSet = Vec<(String, String)>;

/// Maps a workspace metric name onto the Prometheus charset
/// (`[a-zA-Z0-9_:]`, not starting with a digit): every other character
/// becomes `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let keep = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if keep { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Splits a registry-composed key (`name` or `name{label}`) into the
/// family name and the optional label.
fn split_family(composed: &str) -> (&str, Option<&str>) {
    match composed.find('{') {
        Some(open) if composed.ends_with('}') => (
            &composed[..open],
            Some(&composed[open + 1..composed.len() - 1]),
        ),
        _ => (composed, None),
    }
}

/// Escapes a label value per the exposition format.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn write_label_set(out: &mut String, labels: &[(String, String)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
}

/// Renders a [`Snapshot`] in Prometheus text exposition format 0.0.4.
///
/// Deterministic for a given snapshot: families are emitted in sorted
/// order, each preceded by exactly one `# TYPE` line. Counter values are
/// written as exact integers (they are `u64`s; a float rendering would
/// lose precision past 2^53).
pub fn render_prometheus(snapshot: &Snapshot) -> String {
    use std::collections::BTreeMap;

    let mut out = String::new();

    // Group composed keys (`name`, `name{label}`) into families first:
    // sorted iteration alone may interleave families ('{' sorts after
    // '.'), and the format wants one TYPE line per family.
    let mut counters: BTreeMap<String, Vec<(LabelSet, u64)>> = BTreeMap::new();
    for (composed, value) in &snapshot.counters {
        let (name, label) = split_family(composed);
        let labels = label
            .map(|l| vec![("kind".to_string(), l.to_string())])
            .unwrap_or_default();
        counters
            .entry(sanitize_metric_name(name))
            .or_default()
            .push((labels, *value));
    }
    for (family, samples) in &counters {
        let _ = writeln!(out, "# TYPE {family}_total counter");
        for (labels, value) in samples {
            let _ = write!(out, "{family}_total");
            write_label_set(&mut out, labels);
            let _ = writeln!(out, " {value}");
        }
    }

    let mut histograms: BTreeMap<String, Vec<(LabelSet, crate::HistogramSummary)>> =
        BTreeMap::new();
    for (composed, summary) in &snapshot.histograms {
        let (name, label) = split_family(composed);
        let labels = label
            .map(|l| vec![("kind".to_string(), l.to_string())])
            .unwrap_or_default();
        histograms
            .entry(sanitize_metric_name(name))
            .or_default()
            .push((labels, *summary));
    }
    for (family, samples) in &histograms {
        let _ = writeln!(out, "# TYPE {family} summary");
        for (labels, s) in samples {
            for (q, v) in [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99)] {
                let mut quantiled = labels.clone();
                quantiled.push(("quantile".to_string(), q.to_string()));
                let _ = write!(out, "{family}");
                write_label_set(&mut out, &quantiled);
                let _ = writeln!(out, " {v}");
            }
            let _ = write!(out, "{family}_sum");
            write_label_set(&mut out, labels);
            let _ = writeln!(out, " {}", s.sum);
            let _ = write!(out, "{family}_count");
            write_label_set(&mut out, labels);
            let _ = writeln!(out, " {}", s.count);
        }
        // The exact maximum has no slot in the summary type; export it
        // as a sibling gauge so dashboards don't lose it.
        let _ = writeln!(out, "# TYPE {family}_max gauge");
        for (labels, s) in samples {
            let _ = write!(out, "{family}_max");
            write_label_set(&mut out, labels);
            let _ = writeln!(out, " {}", s.max);
        }
    }
    out
}

/// One parsed exposition sample: metric name, label set, value.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Sample name (family plus any `_total`/`_sum`/`_count` suffix).
    pub name: String,
    /// `(key, value)` labels in source order.
    pub labels: LabelSet,
    /// The sample value.
    pub value: f64,
}

impl PromSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Renders this sample back as one exposition line (no trailing
    /// newline) — the inverse of [`parse_prometheus`] for a single
    /// sample. Label values are re-escaped; non-finite values use the
    /// format's spellings (`NaN`, `+Inf`, `-Inf`); an empty label set
    /// canonicalizes to no braces.
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(self.name.len() + 16);
        out.push_str(&self.name);
        write_label_set(&mut out, &self.labels);
        out.push(' ');
        if self.value.is_nan() {
            out.push_str("NaN");
        } else if self.value == f64::INFINITY {
            out.push_str("+Inf");
        } else if self.value == f64::NEG_INFINITY {
            out.push_str("-Inf");
        } else {
            let _ = write!(out, "{}", self.value);
        }
        out
    }
}

/// Parses text exposition format 0.0.4 into its samples.
///
/// Comment (`# ...`) and blank lines are skipped; every other line must
/// be `name[{k="v",...}] value` or the whole parse fails with a
/// line-numbered message. This is the verifying half of the golden-file
/// tests: everything [`render_prometheus`] emits must round-trip.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(
            parse_sample_line(line).map_err(|e| format!("line {}: {e}: {raw:?}", lineno + 1))?,
        );
    }
    Ok(samples)
}

fn parse_sample_line(line: &str) -> Result<PromSample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(open) => {
            let close = line[open..]
                .find('}')
                .map(|i| open + i)
                .ok_or("unclosed label set")?;
            (&line[..open], {
                let labels = &line[open + 1..close];
                let value = line[close + 1..].trim();
                (Some(labels), value)
            })
        }
        None => {
            let mut parts = line.splitn(2, char::is_whitespace);
            let name = parts.next().ok_or("empty line")?;
            (name, (None, parts.next().unwrap_or("").trim()))
        }
    };
    let (label_text, value_text) = rest;
    let name = name_part.trim();
    if name.is_empty() {
        return Err("missing metric name".to_string());
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("invalid metric name {name:?}"));
    }
    let labels = match label_text {
        None => Vec::new(),
        Some(text) => parse_label_set(text)?,
    };
    if value_text.is_empty() {
        return Err("missing value".to_string());
    }
    let value: f64 = value_text
        .parse()
        .map_err(|_| format!("unparsable value {value_text:?}"))?;
    Ok(PromSample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_label_set(text: &str) -> Result<LabelSet, String> {
    let mut labels = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = rest[..eq].trim().to_string();
        if key.is_empty() {
            return Err("empty label name".to_string());
        }
        let after = rest[eq + 1..].trim_start();
        let mut chars = after.char_indices();
        if chars.next().map(|(_, c)| c) != Some('"') {
            return Err("label value must be quoted".to_string());
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    other => other,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end.ok_or("unterminated label value")?;
        labels.push((key, value));
        rest = after[end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err("expected ',' between labels".to_string());
        }
    }
    Ok(labels)
}

#[cfg(feature = "obs-net")]
mod server {
    //! The real `TcpListener`-backed endpoint (feature `obs-net` on).

    use std::io::{self, Read as _, Write as _};
    use std::net::{SocketAddr, TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    /// A background thread serving the global registry over HTTP.
    ///
    /// Routes: `GET /metrics` — [`render_prometheus`](super::render_prometheus)
    /// of [`Registry::global_snapshot`](crate::Registry::global_snapshot),
    /// `Content-Type: text/plain; version=0.0.4`; `GET /healthz` —
    /// [`health_text`](crate::health_text): `200 ok ...` while within
    /// budgets (or before any report), `503 degraded ...` with the
    /// breach reason once the SLO watchdog has tripped.
    /// Anything else is a 404. One request per connection
    /// (`Connection: close`); the accept loop is non-blocking with a
    /// 10ms nap, so [`shutdown`](MetricsServer::shutdown) (or drop)
    /// stops it promptly.
    #[derive(Debug)]
    pub struct MetricsServer {
        local_addr: SocketAddr,
        stop: Arc<AtomicBool>,
        handle: Option<thread::JoinHandle<()>>,
    }

    impl MetricsServer {
        /// Binds `addr` (e.g. `"127.0.0.1:9898"`; port 0 picks a free
        /// one — read it back from [`local_addr`](MetricsServer::local_addr))
        /// and starts the serving thread.
        pub fn serve(addr: &str) -> io::Result<MetricsServer> {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            let local_addr = listener.local_addr()?;
            let stop = Arc::new(AtomicBool::new(false));
            let thread_stop = Arc::clone(&stop);
            let handle = thread::Builder::new()
                .name("rbpc-metrics".to_string())
                .spawn(move || accept_loop(listener, &thread_stop))?;
            Ok(MetricsServer {
                local_addr,
                stop,
                handle: Some(handle),
            })
        }

        /// The address actually bound (resolves port 0).
        pub fn local_addr(&self) -> SocketAddr {
            self.local_addr
        }

        /// Stops the accept loop and joins the serving thread.
        pub fn shutdown(mut self) {
            self.stop_and_join();
        }

        fn stop_and_join(&mut self) {
            self.stop.store(true, Ordering::Release);
            if let Some(handle) = self.handle.take() {
                let _ = handle.join();
            }
        }
    }

    impl Drop for MetricsServer {
        fn drop(&mut self) {
            self.stop_and_join();
        }
    }

    fn accept_loop(listener: TcpListener, stop: &AtomicBool) {
        while !stop.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // Serve inline: /metrics renders in microseconds and
                    // scrapers are rare, so one thread is plenty.
                    let _ = handle_connection(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(_) => thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    fn handle_connection(mut stream: TcpStream) -> io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        stream.set_write_timeout(Some(Duration::from_millis(500)))?;
        let mut request = Vec::with_capacity(512);
        let mut buf = [0u8; 512];
        // Read until the header terminator; requests we care about have
        // no body.
        loop {
            let n = stream.read(&mut buf)?;
            if n == 0 {
                break;
            }
            request.extend_from_slice(&buf[..n]);
            if request.windows(4).any(|w| w == b"\r\n\r\n") || request.len() > 8192 {
                break;
            }
        }
        let request = String::from_utf8_lossy(&request);
        let path = request
            .lines()
            .next()
            .and_then(|line| {
                let mut parts = line.split_whitespace();
                match (parts.next(), parts.next()) {
                    (Some("GET"), Some(path)) => Some(path.to_string()),
                    _ => None,
                }
            })
            .unwrap_or_default();
        let (status, content_type, body) = match path.as_str() {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                super::render_prometheus(&crate::Registry::global_snapshot()),
            ),
            "/healthz" => {
                let (healthy, body) = crate::health_text();
                let status = if healthy {
                    "200 OK"
                } else {
                    "503 Service Unavailable"
                };
                (status, "text/plain; charset=utf-8", body)
            }
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        };
        let header = format!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(header.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()
    }
}

#[cfg(not(feature = "obs-net"))]
mod server {
    //! Featureless stub (feature `obs-net` off): same API, every
    //! constructor fails with `ErrorKind::Unsupported`.

    use std::io;
    use std::net::SocketAddr;

    /// Stub metrics endpoint; enable the `obs-net` feature for the real
    /// `TcpListener`-backed server.
    #[derive(Debug)]
    pub struct MetricsServer {
        never: std::convert::Infallible,
    }

    impl MetricsServer {
        /// Always fails with [`io::ErrorKind::Unsupported`]: this build
        /// has the `obs-net` feature disabled.
        pub fn serve(addr: &str) -> io::Result<MetricsServer> {
            let _ = addr;
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "rbpc-obs built without the `obs-net` feature",
            ))
        }

        /// Unreachable: the stub cannot be constructed.
        pub fn local_addr(&self) -> SocketAddr {
            match self.never {}
        }

        /// Unreachable: the stub cannot be constructed.
        pub fn shutdown(self) {
            match self.never {}
        }
    }
}

pub use server::MetricsServer;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_snapshot() -> Snapshot {
        let r = Registry::new();
        r.counter("core.restore.calls").add(42);
        r.counter_with("sim.outage.events", "local_edge_bypass")
            .add(7);
        let h = r.histogram("core.restore.ns");
        for v in [100u64, 200, 400, 800, 1600] {
            h.record(v);
        }
        r.snapshot()
    }

    #[test]
    fn render_and_parse_round_trip() {
        let text = render_prometheus(&sample_snapshot());
        let samples = parse_prometheus(&text).expect("own output parses");
        let get = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name && s.label("quantile").is_none())
                .unwrap_or_else(|| panic!("missing sample {name}"))
        };
        assert_eq!(get("core_restore_calls_total").value, 42.0);
        assert_eq!(get("core_restore_ns_count").value, 5.0);
        assert_eq!(get("core_restore_ns_sum").value, 3100.0);
        assert_eq!(get("core_restore_ns_max").value, 1600.0);
        let labeled = samples
            .iter()
            .find(|s| s.name == "sim_outage_events_total")
            .expect("labeled counter exported");
        assert_eq!(labeled.label("kind"), Some("local_edge_bypass"));
        assert_eq!(labeled.value, 7.0);
        let quantiles: Vec<f64> = samples
            .iter()
            .filter(|s| s.name == "core_restore_ns")
            .filter_map(|s| s.label("quantile").map(|_| s.value))
            .collect();
        assert_eq!(quantiles.len(), 3);
        assert!(quantiles.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sanitization_and_type_lines() {
        assert_eq!(sanitize_metric_name("core.restore.ns"), "core_restore_ns");
        assert_eq!(sanitize_metric_name("9lives"), "_lives");
        assert_eq!(sanitize_metric_name("a:b_c9"), "a:b_c9");
        let text = render_prometheus(&sample_snapshot());
        // Exactly one TYPE line per family.
        let type_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE")).collect();
        let families: std::collections::BTreeSet<&str> = type_lines.iter().copied().collect();
        assert_eq!(type_lines.len(), families.len());
        assert!(text.contains("# TYPE core_restore_calls_total counter"));
        assert!(text.contains("# TYPE core_restore_ns summary"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("name 1\n# comment\n\nother 2.5").is_ok());
        assert!(parse_prometheus("bad-name 1").is_err());
        assert!(parse_prometheus("name{unclosed 1").is_err());
        assert!(parse_prometheus("name{k=\"v\"} notanumber").is_err());
        assert!(parse_prometheus("name{k=v} 1").is_err());
        assert!(parse_prometheus("name").is_err());
    }

    #[test]
    fn label_escapes_round_trip() {
        let mut out = String::new();
        out.push_str("m{k=\"a\\\\b\\\"c\\nd\"} 1\n");
        let samples = parse_prometheus(&out).expect("escaped labels parse");
        assert_eq!(samples[0].label("k"), Some("a\\b\"c\nd"));
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn non_finite_values_round_trip() {
        let samples =
            parse_prometheus("a NaN\nb +Inf\nc -Inf\nd inf").expect("non-finite values parse");
        assert!(samples[0].value.is_nan());
        assert_eq!(samples[1].value, f64::INFINITY);
        assert_eq!(samples[2].value, f64::NEG_INFINITY);
        assert_eq!(samples[3].value, f64::INFINITY);
        // Render back and re-parse: canonical spellings, values survive.
        assert_eq!(samples[0].to_line(), "a NaN");
        assert_eq!(samples[1].to_line(), "b +Inf");
        assert_eq!(samples[2].to_line(), "c -Inf");
        assert_eq!(samples[3].to_line(), "d +Inf");
        let text: Vec<String> = samples.iter().map(|s| s.to_line()).collect();
        let again = parse_prometheus(&text.join("\n")).expect("rendered lines parse");
        assert!(again[0].value.is_nan());
        assert_eq!(again[1].value, f64::INFINITY);
        assert_eq!(again[2].value, f64::NEG_INFINITY);
    }

    #[test]
    fn escaped_labels_round_trip_through_to_line() {
        let sample = PromSample {
            name: "m".to_string(),
            labels: vec![
                ("k".to_string(), "a\\b\"c\nd".to_string()),
                ("plain".to_string(), "v".to_string()),
            ],
            value: 2.5,
        };
        let line = sample.to_line();
        assert_eq!(line, "m{k=\"a\\\\b\\\"c\\nd\",plain=\"v\"} 2.5");
        let parsed = parse_prometheus(&line).expect("escaped line parses");
        assert_eq!(parsed[0], sample);
    }

    #[test]
    fn empty_label_set_round_trips() {
        // `m{} 1` is legal exposition: empty label set, braces present.
        let samples = parse_prometheus("m{} 1").expect("empty label set parses");
        assert!(samples[0].labels.is_empty());
        assert_eq!(samples[0].value, 1.0);
        // to_line canonicalizes away the empty braces; still parses.
        let line = samples[0].to_line();
        assert_eq!(line, "m 1");
        assert_eq!(parse_prometheus(&line).expect("parses")[0], samples[0]);
    }
}
