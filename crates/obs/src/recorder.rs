//! The black-box flight recorder: a fixed-capacity, lock-light ring of
//! compact structured records from the restoration hot paths.
//!
//! Live gauges answer "how is the run going?"; when a restore blows its
//! latency budget the operator needs "what exactly happened, and can I
//! run it again?". The [`FlightRecorder`] keeps the last `capacity`
//! [`FlightRecord`]s — query endpoints, the full failure set, outcome,
//! concatenation count, plan hash, latency ticks — cheap enough to stay
//! **always on**: recording is one atomic fetch-add plus one small
//! per-slot mutex, and with no recorder installed the
//! [`obs_flight!`](crate::obs_flight) hook is a single atomic load.
//!
//! Slots are indexed by `seq % capacity` (the same lock-light ring idiom
//! as [`WindowedHistogram`](crate::WindowedHistogram)): concurrent
//! recorders contend only on colliding slots, and a straggler holding an
//! old sequence number can never overwrite a newer record. When an SLO
//! watchdog trips (see [`SloWatchdog`](crate::SloWatchdog)), the ring is
//! [frozen](FlightRecorder::freeze) in sequence order into a
//! self-contained JSONL incident file that `rbpc-eval replay` re-executes
//! bit for bit.

use crate::json::JsonValue;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Sentinel tick meaning "stamp me with the recorder's current tick".
pub const STAMP_TICK: u64 = u64::MAX;

/// What kind of moment a [`FlightRecord`] captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// One `Restorer::restore` call (success or failure).
    Restore,
    /// One simulated outage window (scheme in `detail`).
    Outage,
    /// One storm window's failure schedule taking effect.
    StormWindow,
}

impl FlightKind {
    /// Stable wire name, used in incident files.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::Restore => "restore",
            FlightKind::Outage => "outage",
            FlightKind::StormWindow => "storm_window",
        }
    }

    /// The inverse of [`FlightKind::as_str`].
    pub fn parse(s: &str) -> Option<FlightKind> {
        match s {
            "restore" => Some(FlightKind::Restore),
            "outage" => Some(FlightKind::Outage),
            "storm_window" => Some(FlightKind::StormWindow),
            _ => None,
        }
    }
}

/// One compact structured record of a restoration-path moment.
///
/// Self-contained by design: a restore record carries its **full**
/// failure set (storm failure sets are small — a handful of links), so a
/// replay needs nothing beyond the record and the topology recipe in the
/// incident header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Global sequence number, assigned by the recorder.
    pub seq: u64,
    /// Window tick the record belongs to ([`STAMP_TICK`] on input means
    /// "use the recorder's current tick").
    pub tick: u64,
    /// What kind of moment this is.
    pub kind: FlightKind,
    /// Query source node index (0 for kinds without endpoints).
    pub src: u64,
    /// Query destination node index (0 for kinds without endpoints).
    pub dst: u64,
    /// Failed edge ids in effect, sorted.
    pub failed_edges: Vec<u64>,
    /// Failed node ids in effect, sorted.
    pub failed_nodes: Vec<u64>,
    /// Whether the operation succeeded.
    pub ok: bool,
    /// Concatenation count (label-stack depth) of the restoration plan.
    pub segments: u64,
    /// Deterministic hash of the restoration plan
    /// (`Restoration::plan_hash` in rbpc-core); 0 when absent.
    pub plan_hash: u64,
    /// Wall-clock latency of the operation in nanoseconds (the one
    /// nondeterministic field — replays compare everything else).
    pub latency_ns: u64,
    /// Free-form context: the error message for failed restores, the
    /// scheme name for outage records.
    pub detail: String,
}

impl FlightRecord {
    /// A blank record of the given kind, tick set to [`STAMP_TICK`].
    pub fn new(kind: FlightKind) -> FlightRecord {
        FlightRecord {
            seq: 0,
            tick: STAMP_TICK,
            kind,
            src: 0,
            dst: 0,
            failed_edges: Vec::new(),
            failed_nodes: Vec::new(),
            ok: true,
            segments: 0,
            plan_hash: 0,
            latency_ns: 0,
            detail: String::new(),
        }
    }

    /// This record as one compact JSON object (no trailing newline).
    ///
    /// `plan_hash` is rendered as a 16-digit hex *string*: the std-only
    /// JSON reader parses numbers as `f64`, which would corrupt a 64-bit
    /// integer rendered in decimal.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(
            out,
            "{{\"seq\":{},\"tick\":{},\"kind\":\"{}\",\"src\":{},\"dst\":{}",
            self.seq,
            self.tick,
            self.kind.as_str(),
            self.src,
            self.dst
        );
        for (key, ids) in [
            ("failed_edges", &self.failed_edges),
            ("failed_nodes", &self.failed_nodes),
        ] {
            let _ = write!(out, ",\"{key}\":[");
            for (i, id) in ids.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{id}");
            }
            out.push(']');
        }
        let _ = write!(
            out,
            ",\"ok\":{},\"segments\":{},\"plan_hash\":\"{:016x}\",\"latency_ns\":{},\
             \"detail\":\"{}\"}}",
            self.ok,
            self.segments,
            self.plan_hash,
            self.latency_ns,
            crate::json_escape(&self.detail)
        );
        out
    }

    /// Parses a record back from a [`JsonValue`] object — the inverse of
    /// [`FlightRecord::to_json`].
    ///
    /// # Errors
    ///
    /// Describes the first missing or ill-typed field.
    pub fn from_json(v: &JsonValue) -> Result<FlightRecord, String> {
        fn num(v: &JsonValue, key: &str) -> Result<u64, String> {
            v.get(key)
                .and_then(|x| x.as_f64())
                .map(|f| f as u64)
                .ok_or_else(|| format!("missing numeric field `{key}`"))
        }
        fn ids(v: &JsonValue, key: &str) -> Result<Vec<u64>, String> {
            v.get(key)
                .and_then(|x| x.as_arr())
                .ok_or_else(|| format!("missing array field `{key}`"))?
                .iter()
                .map(|x| {
                    x.as_f64()
                        .map(|f| f as u64)
                        .ok_or_else(|| format!("non-numeric id in `{key}`"))
                })
                .collect()
        }
        let kind_str = v
            .get("kind")
            .and_then(|x| x.as_str())
            .ok_or("missing string field `kind`")?;
        let kind =
            FlightKind::parse(kind_str).ok_or_else(|| format!("unknown kind `{kind_str}`"))?;
        let hash_str = v
            .get("plan_hash")
            .and_then(|x| x.as_str())
            .ok_or("missing string field `plan_hash`")?;
        let plan_hash = u64::from_str_radix(hash_str, 16)
            .map_err(|e| format!("bad plan_hash `{hash_str}`: {e}"))?;
        let ok = match v.get("ok") {
            Some(JsonValue::Bool(b)) => *b,
            _ => return Err("missing boolean field `ok`".to_string()),
        };
        Ok(FlightRecord {
            seq: num(v, "seq")?,
            tick: num(v, "tick")?,
            kind,
            src: num(v, "src")?,
            dst: num(v, "dst")?,
            failed_edges: ids(v, "failed_edges")?,
            failed_nodes: ids(v, "failed_nodes")?,
            ok,
            segments: num(v, "segments")?,
            plan_hash,
            latency_ns: num(v, "latency_ns")?,
            detail: v
                .get("detail")
                .and_then(|x| x.as_str())
                .unwrap_or_default()
                .to_string(),
        })
    }
}

/// A fixed-capacity, lock-light ring buffer of [`FlightRecord`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    seq: AtomicU64,
    tick: AtomicU64,
    slots: Box<[Mutex<Option<FlightRecord>>]>,
}

impl FlightRecorder {
    /// A ring holding the most recent `capacity` (>= 1) records.
    pub fn new(capacity: usize) -> FlightRecorder {
        let slots = (0..capacity.max(1)).map(|_| Mutex::new(None)).collect();
        FlightRecorder {
            seq: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            slots,
        }
    }

    /// Number of records the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Sets the tick stamped onto records that arrive with
    /// [`STAMP_TICK`] (the load-test driver advances this per window).
    pub fn set_tick(&self, tick: u64) {
        self.tick.store(tick, Ordering::Release);
    }

    /// The tick currently stamped onto incoming records.
    pub fn current_tick(&self) -> u64 {
        self.tick.load(Ordering::Acquire)
    }

    /// Total records ever offered to the ring (monotone; records older
    /// than the last `capacity` have been overwritten).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Appends one record, assigning its sequence number (returned) and
    /// stamping its tick if it carries [`STAMP_TICK`]. A straggler
    /// thread's slot write never clobbers a newer record.
    pub fn record(&self, mut rec: FlightRecord) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::AcqRel);
        rec.seq = seq;
        if rec.tick == STAMP_TICK {
            rec.tick = self.current_tick();
        }
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut guard = slot.lock().expect("flight-recorder slot poisoned");
        if guard.as_ref().is_none_or(|old| old.seq < seq) {
            *guard = Some(rec);
        }
        seq
    }

    /// Freezes the ring: every live record, sorted by sequence number —
    /// the payload of an incident file.
    pub fn freeze(&self) -> Vec<FlightRecord> {
        let mut out: Vec<FlightRecord> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().expect("flight-recorder slot poisoned").clone())
            .collect();
        out.sort_unstable_by_key(|r| r.seq);
        out
    }
}

static FLIGHT_ACTIVE: AtomicBool = AtomicBool::new(false);

fn flight_slot() -> &'static Mutex<Option<Arc<FlightRecorder>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<FlightRecorder>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Installs (or, with `None`, removes) the process-global flight recorder
/// that [`obs_flight!`](crate::obs_flight) records into. Returns the
/// previous recorder, if any. The recorder is shared via [`Arc`] so the
/// installer can keep a handle for [`FlightRecorder::freeze`].
pub fn set_flight_recorder(rec: Option<Arc<FlightRecorder>>) -> Option<Arc<FlightRecorder>> {
    FLIGHT_ACTIVE.store(rec.is_some(), Ordering::Release);
    std::mem::replace(
        &mut *flight_slot().lock().expect("flight-recorder slot poisoned"),
        rec,
    )
}

/// True when a global flight recorder is installed — the cheap guard
/// [`obs_flight!`](crate::obs_flight) checks before building a record, so
/// an un-recorded hook costs one atomic load.
#[inline]
pub fn flight_recorder_active() -> bool {
    FLIGHT_ACTIVE.load(Ordering::Acquire)
}

/// A handle to the installed global recorder, if any.
pub fn flight_recorder() -> Option<Arc<FlightRecorder>> {
    flight_slot()
        .lock()
        .expect("flight-recorder slot poisoned")
        .clone()
}

/// Records into the global recorder; a no-op when none is installed.
pub fn flight_record(rec: FlightRecord) {
    if !flight_recorder_active() {
        return;
    }
    if let Some(recorder) = flight_recorder() {
        recorder.record(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: FlightKind, src: u64) -> FlightRecord {
        FlightRecord {
            src,
            dst: src + 1,
            ..FlightRecord::new(kind)
        }
    }

    #[test]
    fn ring_keeps_newest_records_in_seq_order() {
        let r = FlightRecorder::new(3);
        for i in 0..5u64 {
            r.record(rec(FlightKind::Restore, i));
        }
        let frozen = r.freeze();
        assert_eq!(r.recorded(), 5);
        assert_eq!(frozen.len(), 3);
        let seqs: Vec<u64> = frozen.iter().map(|x| x.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(frozen[0].src, 2);
    }

    #[test]
    fn tick_stamping_and_explicit_ticks() {
        let r = FlightRecorder::new(8);
        r.set_tick(7);
        let stamped = r.record(rec(FlightKind::Restore, 0));
        let explicit = r.record(FlightRecord {
            tick: 3,
            ..FlightRecord::new(FlightKind::StormWindow)
        });
        let frozen = r.freeze();
        assert_eq!(frozen[stamped as usize].tick, 7);
        assert_eq!(frozen[explicit as usize].tick, 3);
    }

    #[test]
    fn json_round_trip() {
        let original = FlightRecord {
            seq: 12,
            tick: 2,
            kind: FlightKind::Restore,
            src: 4,
            dst: 9,
            failed_edges: vec![1, 5, 8],
            failed_nodes: vec![3],
            ok: false,
            segments: 3,
            plan_hash: 0xdead_beef_cafe_f00d,
            latency_ns: 12_345,
            detail: "no path \"left\"\n".to_string(),
        };
        let line = original.to_json();
        let parsed =
            FlightRecord::from_json(&crate::json::parse(&line).expect("record line parses"))
                .expect("record fields parse");
        assert_eq!(parsed, original);
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let v = crate::json::parse("{\"kind\":\"restore\"}").unwrap();
        assert!(FlightRecord::from_json(&v).is_err());
        let v = crate::json::parse("{\"kind\":\"warp\"}").unwrap();
        assert!(FlightRecord::from_json(&v)
            .unwrap_err()
            .contains("unknown kind"));
    }

    #[test]
    fn global_install_and_guard() {
        // One test owns the global slot end to end (tests run in
        // parallel; nothing else in this crate touches it).
        assert!(!flight_recorder_active());
        flight_record(rec(FlightKind::Restore, 1)); // no-op, no recorder
        let ring = Arc::new(FlightRecorder::new(4));
        let prev = set_flight_recorder(Some(Arc::clone(&ring)));
        assert!(prev.is_none());
        assert!(flight_recorder_active());
        flight_record(rec(FlightKind::Outage, 2));
        let back = set_flight_recorder(None);
        assert!(!flight_recorder_active());
        assert_eq!(back.expect("was installed").recorded(), 1);
        assert_eq!(ring.freeze().len(), 1);
        assert_eq!(ring.freeze()[0].kind, FlightKind::Outage);
    }
}
