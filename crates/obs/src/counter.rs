//! Atomic event counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// All operations use relaxed atomics: counters are statistics, not
/// synchronization, and relaxed increments keep the hot-path cost to a
/// single uncontended RMW.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A new counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (wrapping — a saturating counter would hide overflow
    /// bugs behind a frozen value, and 2^64 events will not happen).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.reset(), 42);
        assert_eq!(c.get(), 0);
    }
}
