//! Structured events and the JSONL sink.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A field value of a structured [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values serialize as `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

macro_rules! impl_value_from {
    ($($t:ty => $variant:ident as $cast:ty),+ $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::$variant(v as $cast)
            }
        }
    )+};
}

impl_value_from!(
    u8 => U64 as u64,
    u16 => U64 as u64,
    u32 => U64 as u64,
    u64 => U64 as u64,
    usize => U64 as u64,
    i8 => I64 as i64,
    i16 => I64 as i64,
    i32 => I64 as i64,
    i64 => I64 as i64,
    f32 => F64 as f64,
    f64 => F64 as f64,
);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// Escapes a string for inclusion inside JSON double quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => {
            let _ = write!(out, "\"{}\"", json_escape(s));
        }
    }
}

/// A structured event: a name, a monotonic timestamp, and typed fields.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event name, e.g. `restore_done`.
    pub name: &'static str,
    /// Microseconds since the process's observability epoch (the first
    /// event or timestamp request).
    pub ts_us: u64,
    /// Ordered `(key, value)` fields.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Builds an event stamped with the current time.
    pub fn now(name: &'static str, fields: Vec<(&'static str, Value)>) -> Event {
        Event {
            name,
            ts_us: epoch_micros(),
            fields,
        }
    }

    /// Serializes the event as a single JSON object (no trailing
    /// newline): `{"event":"...","ts_us":...,<fields>}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        let _ = write!(
            out,
            "{{\"event\":\"{}\",\"ts_us\":{}",
            json_escape(self.name),
            self.ts_us
        );
        for (key, value) in &self.fields {
            let _ = write!(out, ",\"{}\":", json_escape(key));
            write_value(&mut out, value);
        }
        out.push('}');
        out
    }
}

/// The process's observability epoch (set at first use, shared by events
/// and trace spans so their timestamps are directly comparable).
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process's observability epoch.
pub(crate) fn epoch_micros() -> u64 {
    u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Nanoseconds since the process's observability epoch.
pub(crate) fn epoch_nanos() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A sink writing one JSON object per line to an arbitrary writer.
///
/// Writes are serialized through an internal mutex, so a sink can be
/// shared by concurrently restoring threads without interleaving lines.
pub struct JsonlSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Wraps an arbitrary writer.
    pub fn new<W: Write + Send + 'static>(writer: W) -> JsonlSink {
        JsonlSink {
            writer: Mutex::new(Box::new(writer)),
        }
    }

    /// Creates (truncating) a file sink with buffering.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<JsonlSink> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }

    /// Writes one event as one line. I/O errors are swallowed: metrics
    /// must never take down the instrumented program.
    pub fn emit(&self, event: &Event) {
        let line = event.to_json();
        let mut w = self.writer.lock().unwrap();
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) {
        let _ = self.writer.lock().unwrap().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);

fn sink_slot() -> &'static Mutex<Option<JsonlSink>> {
    static SINK: OnceLock<Mutex<Option<JsonlSink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Installs (or, with `None`, removes and flushes) the process-global
/// event sink that [`obs_event!`](crate::obs_event) writes to. Returns
/// the previous sink, if any.
pub fn set_event_sink(sink: Option<JsonlSink>) -> Option<JsonlSink> {
    SINK_ACTIVE.store(sink.is_some(), Ordering::Release);
    std::mem::replace(&mut *sink_slot().lock().unwrap(), sink)
}

/// True when a global event sink is installed. This is the cheap guard
/// `obs_event!` checks before building an event, so un-sunk events cost
/// one atomic load.
#[inline]
pub fn event_sink_active() -> bool {
    SINK_ACTIVE.load(Ordering::Acquire)
}

/// Stamps and emits an event to the global sink; a no-op when no sink is
/// installed.
pub fn emit(name: &'static str, fields: Vec<(&'static str, Value)>) {
    if !event_sink_active() {
        return;
    }
    let event = Event::now(name, fields);
    // The sink's writer lock nests inside the slot lock here, one-way by
    // construction: nothing that holds the writer lock can reach the slot.
    // lint:allow(lock-discipline) — fixed slot-then-writer lock order; no inverse path exists
    if let Some(sink) = sink_slot().lock().unwrap().as_ref() {
        sink.emit(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn event_json_shape() {
        let e = Event {
            name: "restore_done",
            ts_us: 42,
            fields: vec![
                ("src", Value::from(3usize)),
                ("ok", Value::from(true)),
                ("note", Value::from("a\"b")),
                ("ratio", Value::from(1.5f64)),
                ("nan", Value::from(f64::NAN)),
            ],
        };
        assert_eq!(
            e.to_json(),
            "{\"event\":\"restore_done\",\"ts_us\":42,\"src\":3,\"ok\":true,\
             \"note\":\"a\\\"b\",\"ratio\":1.5,\"nan\":null}"
        );
    }

    #[test]
    fn sink_writes_one_line_per_event() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let buf = Shared(Arc::new(Mutex::new(Vec::new())));
        let sink = JsonlSink::new(buf.clone());
        sink.emit(&Event::now("a", vec![]));
        sink.emit(&Event::now("b", vec![("k", Value::from(1u64))]));
        drop(sink);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"a\""));
        assert!(lines[1].ends_with("\"k\":1}"));
    }
}
