//! Windowed time-series: per-tick counters and latency histograms in
//! lock-light ring buffers.
//!
//! The whole-run [`Histogram`](crate::Histogram)/[`Counter`](crate::Counter)
//! aggregates answer "how did the run go?"; a failure storm needs "how is
//! *this second* going?". The types here slice the same log-bucketed
//! statistics into **windows** identified by a caller-supplied tick
//! number. Ticks are injected rather than read from the wall clock so the
//! data path stays deterministic and the workspace's wall-clock lint only
//! has to trust this crate: callers mint ticks from a [`Ticker`] (or from
//! simulated time) and pass them to [`WindowedCounter::add`] /
//! [`WindowedHistogram::record`].
//!
//! Storage is a fixed ring of slots indexed by `tick % capacity`. Each
//! slot is guarded by its own small `Mutex`, so concurrent recorders
//! contend only when they hit the same window — "lock-light", not
//! lock-free, which is the right trade for per-window bucket arrays that
//! must rotate atomically. A slot whose stored tick differs from the
//! incoming one is zeroed and re-stamped (rotation); writes carrying a
//! tick older than the slot's current one are dropped, so a straggler
//! thread cannot corrupt a newer window.
//!
//! Windows freeze into [`WindowSnapshot`]s, which answer p50/p95/p99 via
//! the same bucket math as [`Histogram`](crate::Histogram) and
//! [`merge`](WindowSnapshot::merge) across windows, threads, or processes.

use crate::histogram::{bucket_index, bucket_upper, quantile_over, BUCKETS};
use crate::HistogramSummary;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tick value marking a slot that has never been written.
const EMPTY_TICK: u64 = u64::MAX;

/// Nanoseconds since the process's observability epoch.
///
/// The one sanctioned monotonic-time read for latency measurement outside
/// this crate: consumers (e.g. the load-test driver) take two readings
/// and record the difference, keeping `Instant::now()` itself confined to
/// `rbpc-obs` where the wall-clock lint allows it.
#[inline]
pub fn monotonic_ns() -> u64 {
    crate::events::epoch_nanos()
}

/// Mints window ticks from real elapsed time.
///
/// `Ticker::start(window)` pins an origin;
/// [`current_tick`](Ticker::current_tick) is `elapsed / window`. The
/// ticker is the only
/// place wall-clock pacing happens — recording APIs take the tick as a
/// plain number, so tests and simulations can drive them with synthetic
/// ticks and never sleep.
#[derive(Debug)]
pub struct Ticker {
    start: Instant,
    window: Duration,
}

impl Ticker {
    /// Starts a ticker whose tick 0 begins now. A zero `window` is
    /// bumped to 1ns so tick arithmetic stays defined.
    pub fn start(window: Duration) -> Ticker {
        Ticker {
            start: Instant::now(),
            window: window.max(Duration::from_nanos(1)),
        }
    }

    /// The window length.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Nanoseconds since the ticker started.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The tick the current instant falls in (0-based).
    pub fn current_tick(&self) -> u64 {
        let window_ns = u64::try_from(self.window.as_nanos()).unwrap_or(u64::MAX);
        self.elapsed_ns() / window_ns.max(1)
    }

    /// Sleeps until window `tick` has begun, then returns the tick the
    /// ticker is actually in (>= `tick`; later if the caller overran).
    pub fn wait_for(&self, tick: u64) -> u64 {
        let window_ns = u64::try_from(self.window.as_nanos()).unwrap_or(u64::MAX);
        let target = Duration::from_nanos(window_ns.saturating_mul(tick));
        loop {
            let elapsed = self.start.elapsed();
            if elapsed >= target {
                return self.current_tick();
            }
            std::thread::sleep(target - elapsed);
        }
    }
}

/// One counter slot: the tick it currently represents and its total.
#[derive(Debug, Clone, Copy)]
struct CounterSlot {
    tick: u64,
    value: u64,
}

/// A ring of per-window counter deltas.
///
/// `add(tick, n)` accumulates into the window for `tick`; a window's
/// total survives until `capacity` newer windows have rotated past it.
#[derive(Debug)]
pub struct WindowedCounter {
    slots: Box<[Mutex<CounterSlot>]>,
}

impl WindowedCounter {
    /// A ring holding the most recent `capacity` (>= 1) windows.
    pub fn new(capacity: usize) -> WindowedCounter {
        let slots = (0..capacity.max(1))
            .map(|_| {
                Mutex::new(CounterSlot {
                    tick: EMPTY_TICK,
                    value: 0,
                })
            })
            .collect();
        WindowedCounter { slots }
    }

    /// Number of windows the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Adds `n` to the window for `tick`. Writes stamped older than the
    /// slot's resident window are dropped (a straggler never corrupts a
    /// newer window); a newer tick rotates the slot first.
    pub fn add(&self, tick: u64, n: u64) {
        let mut slot = self.lock_slot(tick);
        if slot.tick != tick {
            if slot.tick != EMPTY_TICK && slot.tick > tick {
                return;
            }
            slot.tick = tick;
            slot.value = 0;
        }
        slot.value = slot.value.saturating_add(n);
    }

    /// The total for window `tick`, or `None` once it has rotated out
    /// (or was never written).
    pub fn get(&self, tick: u64) -> Option<u64> {
        let slot = self.lock_slot(tick);
        (slot.tick == tick).then_some(slot.value)
    }

    /// Every live `(tick, total)` pair, sorted by tick.
    pub fn totals(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self
            .slots
            .iter()
            .map(|s| *s.lock().unwrap())
            .filter(|s| s.tick != EMPTY_TICK)
            .map(|s| (s.tick, s.value))
            .collect();
        out.sort_unstable();
        out
    }

    fn lock_slot(&self, tick: u64) -> std::sync::MutexGuard<'_, CounterSlot> {
        self.slots[(tick % self.slots.len() as u64) as usize]
            .lock()
            .unwrap()
    }
}

/// One histogram slot: a full log-bucket array plus exact stats for the
/// tick it currently represents.
#[derive(Debug, Clone, Copy)]
struct HistSlot {
    tick: u64,
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl HistSlot {
    const fn empty() -> HistSlot {
        HistSlot {
            tick: EMPTY_TICK,
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// A ring of per-window log-bucketed histograms.
///
/// The windowed sibling of [`Histogram`](crate::Histogram): same
/// power-of-two buckets, same quantile semantics, but each window is an
/// independent distribution frozen on demand into a [`WindowSnapshot`].
#[derive(Debug)]
pub struct WindowedHistogram {
    slots: Box<[Mutex<HistSlot>]>,
}

impl WindowedHistogram {
    /// A ring holding the most recent `capacity` (>= 1) windows.
    pub fn new(capacity: usize) -> WindowedHistogram {
        let slots = (0..capacity.max(1))
            .map(|_| Mutex::new(HistSlot::empty()))
            .collect();
        WindowedHistogram { slots }
    }

    /// Number of windows the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records one sample into the window for `tick`, with the same
    /// rotation/straggler rules as [`WindowedCounter::add`].
    pub fn record(&self, tick: u64, v: u64) {
        let mut slot = self.lock_slot(tick);
        if slot.tick != tick {
            if slot.tick != EMPTY_TICK && slot.tick > tick {
                return;
            }
            *slot = HistSlot::empty();
            slot.tick = tick;
        }
        slot.buckets[bucket_index(v)] = slot.buckets[bucket_index(v)].saturating_add(1);
        slot.count = slot.count.saturating_add(1);
        slot.sum = slot.sum.saturating_add(v);
        slot.max = slot.max.max(v);
    }

    /// Freezes window `tick`, or `None` once it has rotated out (or was
    /// never written).
    pub fn window(&self, tick: u64) -> Option<WindowSnapshot> {
        let slot = self.lock_slot(tick);
        (slot.tick == tick).then(|| WindowSnapshot::from_slot(&slot))
    }

    /// Freezes every live window, sorted by tick.
    pub fn snapshots(&self) -> Vec<WindowSnapshot> {
        let mut out: Vec<WindowSnapshot> = self
            .slots
            .iter()
            .map(|s| *s.lock().unwrap())
            .filter(|s| s.tick != EMPTY_TICK)
            .map(|s| WindowSnapshot::from_slot(&s))
            .collect();
        out.sort_unstable_by_key(|s| s.tick);
        out
    }

    /// Merges every live window into one distribution (tick = earliest
    /// live tick).
    pub fn merged(&self) -> WindowSnapshot {
        let mut merged = WindowSnapshot::empty(0);
        let mut first = true;
        for snap in self.snapshots() {
            if first {
                merged.tick = snap.tick;
                first = false;
            }
            merged.merge(&snap);
        }
        merged
    }

    fn lock_slot(&self, tick: u64) -> std::sync::MutexGuard<'_, HistSlot> {
        self.slots[(tick % self.slots.len() as u64) as usize]
            .lock()
            .unwrap()
    }
}

/// A frozen window distribution: mergeable, queryable, serializable.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// The tick this window represents (after merging: the earliest
    /// contributing tick).
    pub tick: u64,
    /// Samples in the window (saturating).
    pub count: u64,
    /// Sum of samples in the window (saturating).
    pub sum: u64,
    /// Exact maximum sample in the window.
    pub max: u64,
    buckets: [u64; BUCKETS],
}

impl WindowSnapshot {
    /// An empty snapshot for window `tick` (the identity for
    /// [`merge`](WindowSnapshot::merge)).
    pub fn empty(tick: u64) -> WindowSnapshot {
        WindowSnapshot {
            tick,
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    fn from_slot(slot: &HistSlot) -> WindowSnapshot {
        WindowSnapshot {
            tick: slot.tick,
            count: slot.count,
            sum: slot.sum,
            max: slot.max,
            buckets: slot.buckets,
        }
    }

    /// True when the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` into `self` (bucket-wise saturating addition; the
    /// tick keeps `self`'s value, callers merge in tick order). Merging
    /// is associative and commutative up to the retained tick, so
    /// windows can be combined across threads or processes in any order.
    pub fn merge(&mut self, other: &WindowSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile of this window — same bucket-upper-bound
    /// semantics as [`Histogram::quantile`](crate::Histogram::quantile),
    /// including the defined 0 for an empty window.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_over(&self.buckets, self.count, self.max, q)
    }

    /// Mean sample, or 0.0 for an empty window.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The standard count/mean/p50/p95/p99/max digest of this window.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }

    /// The count in the bucket containing `v` (mainly for tests probing
    /// bucket placement).
    pub fn bucket_count_for(&self, v: u64) -> u64 {
        self.buckets[bucket_index(v)]
    }

    /// The inclusive upper bound of the bucket containing `v` — the
    /// resolution at which this window reports quantiles near `v`.
    pub fn bucket_bound_for(v: u64) -> u64 {
        bucket_upper(bucket_index(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_independent() {
        let wh = WindowedHistogram::new(4);
        wh.record(0, 10);
        wh.record(0, 20);
        wh.record(1, 1000);
        let w0 = wh.window(0).expect("window 0 live");
        let w1 = wh.window(1).expect("window 1 live");
        assert_eq!(w0.count, 2);
        assert_eq!(w0.max, 20);
        assert_eq!(w1.count, 1);
        assert_eq!(w1.max, 1000);
        assert!(wh.window(2).is_none());
    }

    #[test]
    fn rotation_evicts_and_stragglers_are_dropped() {
        let wh = WindowedHistogram::new(2);
        wh.record(0, 5);
        wh.record(1, 6);
        // Tick 2 maps onto tick 0's slot and evicts it.
        wh.record(2, 7);
        assert!(wh.window(0).is_none());
        assert_eq!(wh.window(2).expect("window 2 live").count, 1);
        // A straggler stamped 0 must not corrupt window 2.
        wh.record(0, 999);
        let w2 = wh.window(2).expect("window 2 still live");
        assert_eq!((w2.count, w2.max), (1, 7));
    }

    #[test]
    fn counter_ring_matches_histogram_semantics() {
        let wc = WindowedCounter::new(2);
        wc.add(0, 3);
        wc.add(0, 4);
        wc.add(1, 1);
        assert_eq!(wc.get(0), Some(7));
        wc.add(2, 10); // evicts window 0
        assert_eq!(wc.get(0), None);
        wc.add(0, 99); // straggler dropped
        assert_eq!(wc.get(2), Some(10));
        assert_eq!(wc.totals(), vec![(1, 1), (2, 10)]);
    }

    #[test]
    fn merge_combines_distributions() {
        let wh = WindowedHistogram::new(8);
        for t in 0..4u64 {
            for v in [100u64, 200, 400] {
                wh.record(t, v * (t + 1));
            }
        }
        let snaps = wh.snapshots();
        assert_eq!(snaps.len(), 4);
        assert_eq!(snaps[0].tick, 0);
        let merged = wh.merged();
        assert_eq!(merged.tick, 0);
        assert_eq!(merged.count, 12);
        assert_eq!(merged.max, 1600);
        // Merged quantile equals a flat histogram over the same samples.
        let flat = crate::Histogram::new();
        for t in 0..4u64 {
            for v in [100u64, 200, 400] {
                flat.record(v * (t + 1));
            }
        }
        for q in [0.5, 0.95, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), flat.quantile(q), "q = {q}");
        }
    }

    #[test]
    fn snapshot_quantiles_match_flat_histogram() {
        let wh = WindowedHistogram::new(4);
        let flat = crate::Histogram::new();
        for v in 1..=100u64 {
            wh.record(3, v);
            flat.record(v);
        }
        let w = wh.window(3).expect("window 3 live");
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(w.quantile(q), flat.quantile(q), "q = {q}");
        }
        assert_eq!(w.summary().p50, flat.summary().p50);
        // Empty window: defined quantile.
        assert_eq!(WindowSnapshot::empty(9).quantile(0.5), 0);
    }

    #[test]
    fn ticker_ticks_advance() {
        let t = Ticker::start(Duration::from_millis(2));
        let reached = t.wait_for(2);
        assert!(reached >= 2, "reached tick {reached}");
        assert!(t.current_tick() >= 2);
        assert!(t.elapsed_ns() >= 4_000_000);
        // Waiting for a past tick returns immediately with the present.
        assert!(t.wait_for(0) >= 2);
    }
}
