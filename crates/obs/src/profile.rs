//! Span-based self-profiler: samples the per-thread [`Span`](crate::Span)
//! stack into collapsed-stack (flamegraph) format.
//!
//! Every `obs_span!` site already marks the interesting regions of the
//! hot path, so profiling is just bookkeeping: while a [`Profiler`] is
//! running, each [`Span`](crate::Span) pushes its (interned) name onto a
//! small per-thread frame stack on enter and pops it on drop. A sampler
//! thread wakes on a fixed interval, reads every registered thread's
//! stack, and counts occurrences per distinct stack. [`Profiler::stop`]
//! folds the counts into a [`ProfileReport`] whose
//! [`to_collapsed`](ProfileReport::to_collapsed) output
//! (`outer;inner <count>` per line) feeds any flamegraph renderer.
//!
//! The frame stacks are arrays of atomics written only by their owning
//! thread; the sampler reads them racily. The depth is published with
//! `Release` *after* the frame is written, so the sampler's `Acquire`
//! read always sees a consistent prefix — a sample is at worst one frame
//! stale, never garbage. When no profiler is running the per-span cost
//! is one relaxed atomic load.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::thread;
use std::time::Duration;

/// Frames deeper than this are counted toward depth but not recorded:
/// real span nests in this workspace are < 10 deep.
const MAX_DEPTH: usize = 32;

/// Sentinel for "no frame id".
const NO_FRAME: u32 = u32::MAX;

static PROFILING: AtomicBool = AtomicBool::new(false);

/// Interned span names: ids are indices into this table. Span names are
/// `&'static str` literals, so the table is tiny and append-only.
fn intern_table() -> &'static Mutex<Vec<&'static str>> {
    static TABLE: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

fn intern(name: &'static str) -> u32 {
    let mut table = intern_table().lock().unwrap();
    if let Some(i) = table.iter().position(|&n| n == name) {
        return i as u32;
    }
    table.push(name);
    (table.len() - 1) as u32
}

fn resolve(id: u32) -> &'static str {
    intern_table()
        .lock()
        .unwrap()
        .get(id as usize)
        .copied()
        .unwrap_or("?")
}

/// One thread's open-span stack, readable by the sampler.
#[derive(Debug)]
struct ThreadStack {
    depth: AtomicUsize,
    frames: [AtomicU32; MAX_DEPTH],
}

impl ThreadStack {
    fn new() -> ThreadStack {
        ThreadStack {
            depth: AtomicUsize::new(0),
            frames: [const { AtomicU32::new(NO_FRAME) }; MAX_DEPTH],
        }
    }
}

/// Registry of every thread stack ever created; dead threads leave
/// dangling `Weak`s that upgrade to `None` and are skipped.
fn stack_registry() -> &'static Mutex<Vec<Weak<ThreadStack>>> {
    static STACKS: OnceLock<Mutex<Vec<Weak<ThreadStack>>>> = OnceLock::new();
    STACKS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static MY_STACK: Arc<ThreadStack> = {
        let stack = Arc::new(ThreadStack::new());
        let mut registry = stack_registry().lock().unwrap();
        registry.retain(|w| w.strong_count() > 0);
        registry.push(Arc::downgrade(&stack));
        stack
    };
}

/// Pushes `name` onto this thread's frame stack if a profiler is
/// running. Returns whether a matching [`pop_frame`] is owed — the
/// caller ([`Span`](crate::Span)) stores the flag so a profiler starting
/// or stopping mid-span never unbalances the stack.
pub(crate) fn push_frame(name: &'static str) -> bool {
    // lint:allow(atomics-order) — a stale read only delays seeing the profiler start/stop by one span; no data is published through it
    if !PROFILING.load(Ordering::Relaxed) {
        return false;
    }
    let id = intern(name);
    MY_STACK
        .try_with(|stack| {
            // lint:allow(atomics-order) — only this thread stores `depth`, so its own read needs no ordering
            let depth = stack.depth.load(Ordering::Relaxed);
            if depth < MAX_DEPTH {
                // lint:allow(atomics-order) — the Release store of `depth` below publishes this frame write to the sampler
                stack.frames[depth].store(id, Ordering::Relaxed);
            }
            // Publish the frame before the new depth: Release pairs with
            // the sampler's Acquire load of `depth`.
            stack.depth.store(depth + 1, Ordering::Release);
        })
        .is_ok()
}

/// Pops the innermost frame pushed by [`push_frame`].
pub(crate) fn pop_frame() {
    let _ = MY_STACK.try_with(|stack| {
        // lint:allow(atomics-order) — only this thread stores `depth`, so its own read needs no ordering
        let depth = stack.depth.load(Ordering::Relaxed);
        stack
            .depth
            .store(depth.saturating_sub(1), Ordering::Release);
    });
}

/// Raw sampler output: per distinct stack (as interned ids), how many
/// samples saw it.
type RawProfile = std::collections::BTreeMap<Vec<u32>, u64>;

fn take_sample(into: &mut RawProfile) {
    let stacks: Vec<Arc<ThreadStack>> = stack_registry()
        .lock()
        .unwrap()
        .iter()
        .filter_map(Weak::upgrade)
        .collect();
    for stack in stacks {
        let depth = stack.depth.load(Ordering::Acquire).min(MAX_DEPTH);
        if depth == 0 {
            continue;
        }
        let frames: Vec<u32> = stack.frames[..depth]
            .iter()
            .map(|f| f.load(Ordering::Relaxed))
            .filter(|&f| f != NO_FRAME)
            .collect();
        if !frames.is_empty() {
            *into.entry(frames).or_insert(0) += 1;
        }
    }
}

/// A running span-stack sampler.
///
/// At most one profiler should run at a time (a second one samples the
/// same stacks — harmless but double-counted). Created by
/// [`Profiler::start`], consumed by [`Profiler::stop`].
#[derive(Debug)]
pub struct Profiler {
    stop: Arc<AtomicBool>,
    handle: thread::JoinHandle<(RawProfile, u64)>,
}

impl Profiler {
    /// Starts sampling every `interval` (clamped to >= 50µs so a typo
    /// cannot busy-spin the sampler thread).
    pub fn start(interval: Duration) -> Profiler {
        let interval = interval.max(Duration::from_micros(50));
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        PROFILING.store(true, Ordering::Release);
        let handle = thread::Builder::new()
            .name("rbpc-profiler".to_string())
            .spawn(move || {
                let mut raw = RawProfile::new();
                let mut rounds = 0u64;
                while !thread_stop.load(Ordering::Acquire) {
                    take_sample(&mut raw);
                    rounds += 1;
                    thread::sleep(interval);
                }
                (raw, rounds)
            })
            .expect("spawning the profiler sampler thread failed");
        Profiler { stop, handle }
    }

    /// Stops sampling and resolves the counts into a report.
    pub fn stop(self) -> ProfileReport {
        PROFILING.store(false, Ordering::Release);
        self.stop.store(true, Ordering::Release);
        let (raw, rounds) = match self.handle.join() {
            Ok(result) => result,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        let mut stacks: Vec<(String, u64)> = raw
            .into_iter()
            .map(|(frames, count)| {
                let names: Vec<&'static str> = frames.iter().map(|&f| resolve(f)).collect();
                (names.join(";"), count)
            })
            .collect();
        // Heaviest stacks first; ties broken by name for determinism.
        stacks.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ProfileReport { rounds, stacks }
    }
}

/// A finished profile: distinct span stacks and their sample counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    rounds: u64,
    stacks: Vec<(String, u64)>,
}

impl ProfileReport {
    /// Sampling rounds taken (including rounds that saw no open spans).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The `(collapsed_stack, samples)` pairs, heaviest first. A
    /// collapsed stack is `outer;inner;…` in span-nesting order.
    pub fn stacks(&self) -> &[(String, u64)] {
        &self.stacks
    }

    /// Total samples that saw at least one open span.
    pub fn samples(&self) -> u64 {
        self.stacks.iter().map(|&(_, n)| n).sum()
    }

    /// True when no sample caught an open span.
    pub fn is_empty(&self) -> bool {
        self.stacks.is_empty()
    }

    /// Total samples in stacks containing frame `name` (at any depth).
    pub fn samples_containing(&self, name: &str) -> u64 {
        self.stacks
            .iter()
            .filter(|(stack, _)| stack.split(';').any(|frame| frame == name))
            .map(|&(_, n)| n)
            .sum()
    }

    /// Renders collapsed-stack (flamegraph) format: one
    /// `frame;frame;… count` line per distinct stack.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for (stack, count) in &self.stacks {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Span;

    #[test]
    fn profiler_catches_open_spans() {
        let profiler = Profiler::start(Duration::from_micros(100));
        {
            let _outer = Span::enter("profile.test.outer");
            let _inner = Span::enter("profile.test.inner");
            thread::sleep(Duration::from_millis(50));
        }
        let report = profiler.stop();
        assert!(!report.is_empty(), "sampler saw no spans in 50ms");
        assert!(report.rounds() > 0);
        assert!(report.samples_containing("profile.test.outer") > 0);
        let collapsed = report.to_collapsed();
        assert!(
            collapsed.contains("profile.test.outer;profile.test.inner"),
            "nesting order lost: {collapsed}"
        );
        // Collapsed lines are `stack count`.
        for line in collapsed.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("line has a count");
            assert!(!stack.is_empty());
            assert!(count.parse::<u64>().is_ok(), "bad count in {line:?}");
        }
    }

    #[test]
    fn frames_balance_across_profiler_lifetime() {
        // A span entered before the profiler starts owes no pop; one
        // entered while it runs owes exactly one.
        let early = push_frame("profile.test.balance.early");
        let profiler = Profiler::start(Duration::from_millis(1));
        let tracked = push_frame("profile.test.balance.tracked");
        if tracked {
            pop_frame();
        }
        let report = profiler.stop();
        assert!(tracked, "push while profiling must be tracked");
        // `early` may be true only if another test's profiler was live.
        if early {
            pop_frame();
        }
        let _ = report;
        // After balancing, this thread's stack depth is back to zero.
        MY_STACK.with(|s| assert_eq!(s.depth.load(Ordering::Relaxed), 0));
    }

    #[test]
    fn interning_is_stable() {
        let a = intern("profile.test.intern.a");
        let b = intern("profile.test.intern.b");
        assert_ne!(a, b);
        assert_eq!(intern("profile.test.intern.a"), a);
        assert_eq!(resolve(a), "profile.test.intern.a");
        assert_eq!(resolve(u32::MAX - 1), "?");
    }
}
