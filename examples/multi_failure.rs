//! Multiple failures and the paper's tightness constructions.
//!
//! Demonstrates Theorem 1 on the comb (Figure 2), Theorem 2 on the
//! weighted chain (Figure 3), the router-failure pathology (Figure 4),
//! and measured PC lengths for k = 1..4 simultaneous link failures on the
//! synthetic ISP.
//!
//! Run with: `cargo run --release --example multi_failure`

use mpls_rbpc::core::theory::min_shortest_path_cover;
use mpls_rbpc::core::{greedy_decompose, BasePathOracle, DenseBasePaths, Restorer};
use mpls_rbpc::graph::{shortest_path, CostModel, DetRng, FailureSet, Metric};
use mpls_rbpc::topo::{comb, isp_topology, two_hop_star, weighted_tight, IspParams};

fn main() {
    // --- Figure 2: the comb (Theorem 1 is tight) ---
    println!("Figure 2 comb — Theorem 1 tightness (unweighted):");
    for k in 1..=5 {
        let c = comb(k);
        let oracle = DenseBasePaths::build(c.graph.clone(), CostModel::new(Metric::Unweighted, 0));
        let failures = FailureSet::of_edges(c.spine_edges.iter().copied());
        let view = failures.view(&c.graph);
        let backup = shortest_path(&view, oracle.cost_model(), c.s, c.t).expect("teeth survive");
        let conc = greedy_decompose(&oracle, &backup);
        println!(
            "  k = {k}: restoration uses {} base paths (bound: {})",
            conc.len(),
            k + 1
        );
    }

    // --- Figure 3: weighted chain (Theorem 2 is tight) ---
    println!("\nFigure 3 chain — Theorem 2 tightness (weighted):");
    for k in 1..=4 {
        let w = weighted_tight(k);
        let oracle = DenseBasePaths::build(w.graph.clone(), CostModel::new(Metric::Weighted, 0));
        let failures = FailureSet::of_edges(w.cheap_edges.iter().copied());
        let view = failures.view(&w.graph);
        let backup = shortest_path(&view, oracle.cost_model(), w.s, w.t).expect("chain survives");
        let cover = min_shortest_path_cover(&oracle, &backup);
        println!(
            "  k = {k}: {} shortest paths + {} raw edges (bounds: {} + {})",
            cover.path_segments,
            cover.edge_segments,
            k + 1,
            k
        );
    }

    // --- Figure 4: router failure can cost Ω(n) pieces ---
    println!("\nFigure 4 star — router-failure pathology:");
    for n in [8, 16, 32] {
        let star = two_hop_star(n);
        let oracle =
            DenseBasePaths::build(star.graph.clone(), CostModel::new(Metric::Unweighted, 0));
        let failures = FailureSet::of_nodes([star.hub.index()]);
        let view = failures.view(&star.graph);
        let backup =
            shortest_path(&view, oracle.cost_model(), star.s, star.t).expect("line survives");
        let conc = greedy_decompose(&oracle, &backup);
        println!(
            "  n = {n}: one router failure forces {} pieces (lower bound (n-2)/2 = {})",
            conc.len(),
            (n - 2) / 2
        );
    }

    // --- Random multi-failures on the ISP ---
    println!("\nSynthetic ISP — PC length under k simultaneous link failures:");
    let isp = isp_topology(IspParams::default(), 1).graph;
    let oracle = DenseBasePaths::build(isp.clone(), CostModel::new(Metric::Weighted, 1));
    let restorer = Restorer::new(&oracle);
    let mut rng = DetRng::seed_from_u64(9);
    for k in 1..=4usize {
        let mut lens = Vec::new();
        let mut disconnected = 0;
        for _ in 0..300 {
            let s = mpls_rbpc::graph::NodeId::new(rng.gen_range(0..isp.node_count()));
            let t = mpls_rbpc::graph::NodeId::new(rng.gen_range(0..isp.node_count()));
            if s == t {
                continue;
            }
            let Some(base) = oracle.base_path(s, t) else {
                continue;
            };
            if base.hop_count() < k {
                continue;
            }
            // Fail k distinct links of the base path.
            let mut edges: Vec<_> = base.edges().to_vec();
            for i in (1..edges.len()).rev() {
                edges.swap(i, rng.gen_range(0..=i));
            }
            let failures = FailureSet::of_edges(edges.into_iter().take(k));
            match restorer.restore(s, t, &failures) {
                Ok(r) => lens.push(r.pc_length()),
                Err(_) => disconnected += 1,
            }
        }
        let avg: f64 = lens.iter().sum::<usize>() as f64 / lens.len().max(1) as f64;
        let max = lens.iter().max().copied().unwrap_or(0);
        println!(
            "  k = {k}: avg PC length {avg:.2}, max {max} (Theorem 3 bound: {} paths + {k} edges), {disconnected} disconnections",
            k + 1
        );
    }
}
