//! Route families over subnet restrictions — the paper's §1 motivation.
//!
//! QoS/traffic-engineering deployments keep several shortest-path families
//! at once: the plain IGP routes, the "premium" routes restricted to
//! high-capacity links, and the core-only routes used for signaling. Each
//! family runs RBPC over its own subnet; a failure triggers restoration in
//! every family it touches, and restoration never leaves the subnet.
//!
//! Run with: `cargo run --release --example qos_families`

use mpls_rbpc::core::{FamilySet, RouteFamily};
use mpls_rbpc::graph::{CostModel, FailureSet, Metric, NodeId};
use mpls_rbpc::topo::{isp_topology, IspParams};

fn main() {
    let isp = isp_topology(IspParams::default(), 6);
    let g = &isp.graph;
    let model = CostModel::new(Metric::Weighted, 6);

    // Three families over the same backbone, by link class (weight is the
    // ISP generator's inverse-capacity class: 1 = core, 2 = intra-PoP,
    // 4 = uplink, 8 = access).
    let families = FamilySet::new()
        .with(RouteFamily::new(
            "best-effort (all links)",
            g,
            model,
            |_, _| true,
        ))
        .with(RouteFamily::new(
            "premium (≥ OC12: core+uplink+PoP)",
            g,
            model,
            |_, rec| rec.weight <= 4,
        ))
        .with(RouteFamily::new(
            "signaling (core only)",
            g,
            model,
            |_, rec| rec.weight == 1,
        ));

    for f in families.families() {
        println!(
            "family {:<36} {} links",
            f.name(),
            f.subgraph().graph.edge_count()
        );
    }

    // Pick a pair connected in all three families (two core routers).
    let (s, t) = (isp.core[0], isp.core[isp.core.len() / 2]);
    println!("\nroute {s} -> {t}:");
    for f in families.families() {
        let p = f.base_path(s, t).expect("core routers connect everywhere");
        println!("  {:<36} {}", f.name(), p);
    }

    // Fail the first link of the premium family's route; restore per family.
    let premium = &families.families()[1];
    let failed = premium.base_path(s, t).unwrap().edges()[0];
    let failures = FailureSet::of_edge(failed);
    println!("\nfailing {failed}…");
    for (name, result) in families.restore_all(s, t, &failures) {
        match result {
            Ok(r) if r.affected => println!(
                "  {:<36} restored over {} piece(s): {}",
                name,
                r.concatenation.len(),
                r.backup
            ),
            Ok(_) => println!("  {:<36} unaffected", name),
            Err(e) => println!("  {:<36} UNRESTORABLE within subnet: {e}", name),
        }
    }

    // Show the subnet guarantee: the premium restoration only uses
    // premium-class links.
    let r = premium.restore(s, t, &failures).unwrap();
    assert!(r.backup.edges().iter().all(|&e| g.weight(e) <= 4));
    println!("\npremium restoration verified to stay on ≥ OC12 links");
    let _ = NodeId::new(0);
}
