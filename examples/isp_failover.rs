//! ISP failover drill: on the paper-scale synthetic ISP backbone, fail a
//! busy core link, apply the pre-computed failover plan at every affected
//! source router, and compare RBPC's control-plane cost against tearing
//! down and re-establishing LSPs.
//!
//! Run with: `cargo run --release --example isp_failover`

use mpls_rbpc::core::baseline::{rbpc_source_cost, reestablish_cost};
use mpls_rbpc::core::{BasePathOracle, DenseBasePaths, ProvisionedDomain, Restorer};
use mpls_rbpc::graph::{CostModel, FailureSet, Metric};
use mpls_rbpc::topo::{isp_topology, IspParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let isp = isp_topology(IspParams::default(), 1);
    let graph = isp.graph.clone();
    println!(
        "ISP backbone: {} routers, {} links, avg degree {:.2}",
        graph.node_count(),
        graph.edge_count(),
        graph.degree_stats().unwrap().avg
    );

    let oracle = DenseBasePaths::build(graph.clone(), CostModel::new(Metric::Weighted, 1));
    let restorer = Restorer::new(&oracle);

    // Pick the core link carried by the most base paths (the scariest
    // failure), by checking every ordered pair's base path.
    let pairs: Vec<_> = graph
        .nodes()
        .flat_map(|s| graph.nodes().map(move |t| (s, t)))
        .filter(|(s, t)| s != t)
        .collect();
    let mut usage = vec![0usize; graph.edge_count()];
    for &(s, t) in &pairs {
        if let Some(p) = oracle.base_path(s, t) {
            for &e in p.edges() {
                usage[e.index()] += 1;
            }
        }
    }
    let (busiest, carried) = usage
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| c)
        .map(|(i, &c)| (mpls_rbpc::graph::EdgeId::new(i), c))
        .expect("nonempty");
    let (u, v) = graph.endpoints(busiest);
    println!("busiest link: {busiest} = {u} — {v}, carrying {carried} base paths");

    // Pre-compute the failover plan for that link (what §4.1 indexes by
    // link at every source).
    let plan = restorer.failover_plan(busiest, pairs.iter().copied());
    println!(
        "failover plan: {} FEC updates, {} unrestorable pairs",
        plan.updates.len(),
        plan.unrestorable.len()
    );
    let avg_pc: f64 = plan
        .updates
        .iter()
        .map(|u| u.restoration.pc_length() as f64)
        .sum::<f64>()
        / plan.updates.len().max(1) as f64;
    println!("average PC length: {avg_pc:.2} (bound for one failure: 3)");

    // Control-plane cost: RBPC vs teardown + re-establishment.
    let rbpc = rbpc_source_cost(&plan);
    let re = reestablish_cost(&plan);
    println!("\ncontrol-plane cost for this failure event:");
    println!(
        "  RBPC:            {:>6} messages, {:>6} table writes",
        rbpc.messages,
        rbpc.table_writes()
    );
    println!(
        "  re-establish:    {:>6} messages, {:>6} table writes",
        re.messages,
        re.table_writes()
    );
    println!(
        "  RBPC saves {:.0}x messages",
        re.messages.max(1) as f64 / rbpc.messages.max(1) as f64
    );

    // Drive it end-to-end through the MPLS simulator for a slice of the
    // affected routes: provision, fail, apply, forward.
    let mut domain = ProvisionedDomain::new(&oracle);
    let failures = FailureSet::of_edge(busiest);
    let mut verified = 0;
    for update in plan.updates.iter().take(50) {
        domain.provision_pair(&oracle, update.source, update.dest)?;
        domain.apply_source_restoration(&update.restoration)?;
        let trace = domain.forward(update.source, update.dest, &failures)?;
        assert_eq!(trace.route(), update.restoration.backup.nodes());
        verified += 1;
    }
    println!(
        "\nverified {verified} restored routes by packet forwarding through the failed network"
    );
    Ok(())
}
