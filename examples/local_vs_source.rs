//! Local vs source RBPC, and the hybrid scheme.
//!
//! Shows, for one disrupted LSP on the synthetic ISP:
//!
//! 1. **edge-bypass** local RBPC — instant ILM splice at the router
//!    adjacent to the failure, packet resumes the original LSP;
//! 2. **end-route** local RBPC — instant splice straight to the
//!    destination;
//! 3. **source RBPC** — optimal restoration once the link-state flood
//!    reaches the source (the hybrid's second phase);
//!
//! each validated by forwarding a packet through the failed network, plus
//! the aggregate stretch histograms of Figure 10.
//!
//! Run with: `cargo run --release --example local_vs_source`

use mpls_rbpc::core::{
    edge_bypass, end_route, BasePathOracle, DenseBasePaths, ProvisionedDomain, Restorer,
};
use mpls_rbpc::eval::{figure10, sample_pairs};
use mpls_rbpc::graph::{CostModel, FailureSet, Metric};
use mpls_rbpc::topo::{isp_topology, IspParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let isp = isp_topology(IspParams::default(), 2);
    let oracle = DenseBasePaths::build(isp.graph.clone(), CostModel::new(Metric::Weighted, 2));
    let restorer = Restorer::new(&oracle);

    // Find a pair whose base path is long enough to make local vs source
    // interesting, with the failure in the middle.
    let pairs = sample_pairs(&isp.graph, 400, 3);
    let (s, t, base) = pairs
        .iter()
        .filter_map(|&(s, t)| oracle.base_path(s, t).map(|p| (s, t, p)))
        .max_by_key(|(_, _, p)| p.hop_count())
        .expect("sampled pairs exist");
    let failed = base.edges()[base.hop_count() / 2];
    let failures = FailureSet::of_edge(failed);
    println!("LSP {s} -> {t}: {base}");
    println!("failing mid-path link {failed}\n");

    let mut domain = ProvisionedDomain::new(&oracle);
    domain.provision_all_pairs(&oracle)?;
    let lsp = domain.lsp_for_pair(s, t).expect("provisioned");

    // Phase 1a: edge-bypass splice at R1.
    let bypass = edge_bypass(&oracle, &base, failed, &failures)?;
    let old_entry = domain.apply_local_restoration(lsp, &bypass)?;
    let trace = domain.forward(s, t, &failures)?;
    println!(
        "edge-bypass: splice at {} with {} label(s); delivered over {} hops (optimum would be shorter or equal)",
        bypass.r1,
        bypass.pc_length(),
        trace.hop_count()
    );

    // Roll back and try phase 1b: end-route splice.
    let broken_label = domain
        .net()
        .lsp(lsp)?
        .label_at(bypass.r1)
        .expect("label at r1");
    domain
        .net_mut()
        .install_ilm_entry(bypass.r1, broken_label, old_entry)?;
    let endroute = end_route(&oracle, &base, failed, &failures)?;
    domain.apply_local_restoration(lsp, &endroute)?;
    let trace = domain.forward(s, t, &failures)?;
    println!(
        "end-route:   splice at {} with {} label(s); delivered over {} hops",
        endroute.r1,
        endroute.pc_length(),
        trace.hop_count()
    );

    // Phase 2 (hybrid): the source hears about the failure and installs
    // the optimal restoration; the local splice becomes irrelevant.
    let optimal = restorer.restore(s, t, &failures)?;
    domain.apply_source_restoration(&optimal)?;
    let trace = domain.forward(s, t, &failures)?;
    println!(
        "source RBPC: FEC rewrite at {s} with {} label(s); delivered over {} hops (min-cost)",
        optimal.pc_length(),
        trace.hop_count()
    );
    assert_eq!(trace.route(), optimal.backup.nodes());

    // Aggregate view: Figure 10 on this topology.
    println!("\nFigure 10 (aggregate stretch of local RBPC vs min-cost restoration):\n");
    let fig = figure10(&oracle, &sample_pairs(&isp.graph, 120, 4), 4);
    print!("{}", mpls_rbpc::eval::figure10::render(&fig));
    Ok(())
}
