//! Quickstart: provision base LSPs on a small network, fail a link, and
//! watch RBPC restore the route with a two-label stack.
//!
//! Run with: `cargo run --example quickstart`

use mpls_rbpc::core::{BasePathOracle, DenseBasePaths, ProvisionedDomain, Restorer};
use mpls_rbpc::graph::{CostModel, FailureSet, Metric, NodeId};
use mpls_rbpc::topo::gnm_connected;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small deterministic network: 12 routers, 24 weighted links.
    let graph = gnm_connected(12, 24, 10, 42);
    println!(
        "network: {} routers, {} links",
        graph.node_count(),
        graph.edge_count()
    );

    // The base set: one canonical shortest path per ordered pair
    // (Theorem 3's padded unique shortest paths).
    let oracle = DenseBasePaths::build(graph, CostModel::new(Metric::Weighted, 7));
    let (src, dst) = (NodeId::new(0), NodeId::new(11));
    let base = oracle.base_path(src, dst).expect("connected");
    println!("base path {src} -> {dst}: {base}");

    // Provision every pair as an LSP in a simulated MPLS domain.
    let mut domain = ProvisionedDomain::new(&oracle);
    domain.provision_all_pairs(&oracle)?;
    println!(
        "provisioned {} ILM entries across the domain",
        domain.net().total_ilm_entries()
    );

    // Fail the first link of our base path: the LSP black-holes.
    let failed = base.edges()[0];
    let failures = FailureSet::of_edge(failed);
    println!("\nfailing link {failed}…");
    let err = domain.forward(src, dst, &failures).unwrap_err();
    println!("before restoration: {err}");

    // Source RBPC: compute the post-failure shortest path, decompose it
    // into surviving base LSPs, and rewrite ONE FEC entry at the source.
    let restorer = Restorer::new(&oracle);
    let restoration = restorer.restore(src, dst, &failures)?;
    println!(
        "backup path: {} (cost {} vs original {})",
        restoration.backup, restoration.backup_cost.base, restoration.original_cost.base
    );
    println!(
        "concatenation: {} piece(s) — Theorem 2 guarantees at most 3 for one failure",
        restoration.pc_length()
    );
    for seg in restoration.concatenation.segments() {
        println!("  {:?} {}", seg.kind, seg.path);
    }

    let before = domain.net().stats();
    domain.apply_source_restoration(&restoration)?;
    let delta = domain.net().stats().since(&before);
    println!(
        "restoration cost: {} signaling messages, {} ILM writes, {} FEC writes",
        delta.messages, delta.ilm_writes, delta.fec_writes
    );

    // The packet now flows along the backup, pushed as a label stack.
    let trace = domain.forward(src, dst, &failures)?;
    println!(
        "after restoration: delivered over {} hops, max label-stack depth {}",
        trace.hop_count(),
        trace.max_stack_depth()
    );
    assert_eq!(trace.route(), restoration.backup.nodes());
    Ok(())
}
