//! Failure/recovery churn on the ISP backbone.
//!
//! Drives the MPLS domain through a random sequence of link failures and
//! recoveries. After every event the churn driver reconciles the FEC
//! tables (restoring disrupted routes, reverting recovered ones) and the
//! whole domain is validated by forwarding a packet for every tracked
//! route — "these changes are reversed when the link recovers", §4 of the
//! paper, in motion.
//!
//! Run with: `cargo run --release --example network_churn`

use mpls_rbpc::core::{BasePathOracle, ChurnDriver, DenseBasePaths};
use mpls_rbpc::graph::{CostModel, DetRng, EdgeId, Metric};
use mpls_rbpc::topo::{isp_topology, IspParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let isp = isp_topology(
        IspParams {
            pops: 12,
            core_routers: 8,
            ..IspParams::default()
        },
        8,
    );
    let oracle = DenseBasePaths::build(isp.graph.clone(), CostModel::new(Metric::Weighted, 8));
    let pairs = mpls_rbpc::eval::sample_pairs(oracle.graph(), 40, 2);
    let mut churn = ChurnDriver::new(&oracle, pairs)?;
    println!(
        "tracking {} routes over {} routers / {} links\n",
        churn.pairs().len(),
        oracle.graph().node_count(),
        oracle.graph().edge_count()
    );

    let mut rng = DetRng::seed_from_u64(99);
    let m = oracle.graph().edge_count();
    let mut down: Vec<EdgeId> = Vec::new();
    for step in 1..=20 {
        let recover = !down.is_empty() && rng.gen_bool(0.45);
        if recover {
            let e = down.swap_remove(rng.gen_range(0..down.len()));
            churn.recover_link(e)?;
            println!(
                "t={step:>2}  RECOVER {e}   -> {} rerouted, {} dark, {} links down",
                churn.rerouted_count(),
                churn.dark_count(),
                down.len()
            );
        } else {
            let e = EdgeId::new(rng.gen_range(0..m));
            if !churn.failures().edge_failed(e) {
                down.push(e);
            }
            churn.fail_link(e)?;
            println!(
                "t={step:>2}  FAIL    {e}   -> {} rerouted, {} dark, {} links down",
                churn.rerouted_count(),
                churn.dark_count(),
                down.len()
            );
        }
        // Every tracked route forwards along the canonical path of the
        // *current* topology (panics otherwise).
        churn.verify();
    }

    println!("\nrecovering all links…");
    for e in down {
        churn.recover_link(e)?;
    }
    churn.verify();
    println!(
        "back to baseline: {} rerouted, {} dark — all routes on their original LSPs",
        churn.rerouted_count(),
        churn.dark_count()
    );
    Ok(())
}
