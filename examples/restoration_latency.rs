//! How long does a failure black-hole traffic under each scheme?
//!
//! Simulates, on the synthetic ISP backbone: loss-of-signal detection,
//! the link-state flood, table writes, and LSP signaling — then reports
//! the outage window (and packets lost for a 10k pps flow) per scheme,
//! over every (sampled pair, on-path link) failure event.
//!
//! Run with: `cargo run --release --example restoration_latency`

use mpls_rbpc::core::DenseBasePaths;
use mpls_rbpc::eval::sample_pairs;
use mpls_rbpc::graph::{CostModel, Metric};
use mpls_rbpc::sim::{outage_summary, simulate_flow, FlowConfig, LatencyModel, Scheme};
use mpls_rbpc::topo::{isp_topology, IspParams};

fn main() {
    let isp = isp_topology(IspParams::default(), 4);
    let oracle = DenseBasePaths::build(isp.graph.clone(), CostModel::new(Metric::Weighted, 4));
    let model = LatencyModel::default();
    let pairs = sample_pairs(&isp.graph, 150, 7);

    println!(
        "latency model: detection {} ms, flood {} ms/hop, signaling {} ms/hop, table writes {} us\n",
        model.detection_us / 1000,
        model.flood_hop_us / 1000,
        model.signal_hop_us / 1000,
        model.ilm_write_us,
    );
    println!(
        "{:<18} {:>10} {:>14} {:>12} {:>16}",
        "scheme", "events", "mean outage", "max outage", "lost @10k pps"
    );
    for scheme in Scheme::all() {
        let s = outage_summary(&oracle, &model, &pairs, scheme);
        let restorable = s.events - s.unrestorable;
        println!(
            "{:<18} {:>10} {:>11.1} ms {:>9.1} ms {:>13.0} pkts",
            format!("{:?}", s.scheme),
            format!("{}/{}", restorable, s.events),
            s.mean_us / 1000.0,
            s.max_us as f64 / 1000.0,
            s.mean_us * 10_000.0 / 1_000_000.0,
        );
    }
    println!(
        "\nLocal RBPC restores within detection time; source RBPC pays the flood;\nre-establishment additionally signals every hop of the new LSP — the paper's\n\"fast recovery\" ordering, quantified."
    );

    // Packet-level view of one failure: a 10k pps flow through a mid-path
    // failure, per scheme.
    let (s, t, base) = pairs
        .iter()
        .filter_map(|&(s, t)| {
            mpls_rbpc::core::BasePathOracle::base_path(&oracle, s, t).map(|p| (s, t, p))
        })
        .max_by_key(|(_, _, p)| p.hop_count())
        .expect("pairs exist");
    let failed = base.edges()[base.hop_count() / 2];
    let cfg = FlowConfig::default();
    println!("\npacket-level flow {s} -> {t} (10k pps, 200 ms, link {failed} fails at 50 ms):");
    println!(
        "{:<18} {:>8} {:>8} {:>10} {:>14} {:>12}",
        "scheme", "dropped", "reorder", "mean lat.", "max lat.", "delivered"
    );
    for scheme in Scheme::all() {
        match simulate_flow(&oracle, &model, &cfg, s, t, failed, scheme) {
            Ok(r) => println!(
                "{:<18} {:>8} {:>8} {:>7.1} ms {:>11.1} ms {:>12}",
                format!("{scheme:?}"),
                r.dropped,
                r.reordered,
                r.mean_latency_us as f64 / 1000.0,
                r.max_latency_us as f64 / 1000.0,
                r.delivered,
            ),
            Err(e) => println!("{:<18} cannot restore: {e}", format!("{scheme:?}")),
        }
    }
}
